"""Tests for the E-process engine itself."""

import pytest

from repro.core.bounds import edge_cover_sandwich
from repro.core.eprocess import BLUE, RED, EdgeProcess
from repro.core.rules import LowestLabelRule
from repro.errors import EvenDegreeError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    double_cycle,
    hypercube_graph,
    torus_grid,
)
from repro.graphs.graph import Graph
from repro.graphs.random_regular import random_connected_regular_graph


class TestConstruction:
    def test_tracks_edges_always(self, rng):
        walk = EdgeProcess(cycle_graph(4), 0, rng=rng)
        assert walk.tracks_edges

    def test_even_degree_enforcement_optional(self, rng):
        k4 = complete_graph(4)  # 3-regular
        with pytest.raises(EvenDegreeError):
            EdgeProcess(k4, 0, rng=rng, require_even_degrees=True)
        walk = EdgeProcess(k4, 0, rng=rng)  # default: allowed (Figure 1 runs d=3)
        walk.run_until_vertex_cover()
        assert walk.vertices_covered

    def test_initial_blue_degrees_equal_degrees(self, rng):
        g = torus_grid(3, 3)
        walk = EdgeProcess(g, 0, rng=rng)
        assert walk.blue_degree == list(g.degrees())
        assert walk.num_blue_edges == g.m


class TestCycleDeterminism:
    def test_covers_cycle_in_exactly_n_minus_one(self, rng):
        # On C_n the first blue phase is forced around the cycle: any rule
        # gives vertex cover at exactly n-1 and edge cover at exactly n.
        n = 13
        walk = EdgeProcess(cycle_graph(n), 0, rng=rng)
        assert walk.run_until_vertex_cover() == n - 1
        assert walk.run_until_edge_cover() == n
        assert walk.current == 0  # blue phase returned to start
        assert walk.blue_steps == n
        assert walk.red_steps == 0


class TestStepMechanics:
    def test_blue_steps_consume_edges(self, rng):
        g = torus_grid(4, 4)
        walk = EdgeProcess(g, 0, rng=rng)
        walk.run(10)
        assert walk.blue_steps == walk.num_visited_edges
        assert walk.blue_steps + walk.red_steps == walk.steps

    def test_red_steps_only_after_local_exhaustion(self, rng):
        g = torus_grid(4, 4)
        walk = EdgeProcess(g, 0, rng=rng)
        while walk.next_color == BLUE:
            walk.step()
        # now at a vertex with no blue edges: next transition is red
        assert walk.blue_degree[walk.current] == 0
        before_edges = walk.num_visited_edges
        walk.step()
        assert walk.num_visited_edges == before_edges  # red step marks nothing

    def test_blue_candidates_shrink(self, rng):
        g = complete_graph(5)
        walk = EdgeProcess(g, 0, rng=rng)
        assert len(walk.blue_candidates(0)) == 4
        walk.step()
        assert len(walk.blue_candidates(0)) == 3

    def test_loop_candidate_reported_once_and_consumes_two(self, rng):
        # triangle plus a loop at 0: even degrees (4, 2, 2)
        g = Graph(3, [(0, 1), (1, 2), (2, 0), (0, 0)])
        walk = EdgeProcess(g, 0, rng=rng, rule=LowestLabelRule())
        cands = walk.blue_candidates(0)
        # neighbours: edge 0 -> vertex 1, edge 2 -> vertex 2, loop 3 -> vertex 0
        assert sorted(cands) == [(0, 1), (2, 2), (3, 0)]  # loop id 3 appears once
        walk.run_until_edge_cover()
        assert walk.blue_degree == [0, 0, 0]
        assert walk.num_visited_edges == 4

    def test_first_edge_visit_times_recorded(self, rng):
        g = cycle_graph(5)
        walk = EdgeProcess(g, 0, rng=rng)
        walk.run_until_edge_cover()
        times = sorted(walk.first_edge_visit_time)
        assert times == [1, 2, 3, 4, 5]


class TestPhaseColors:
    def test_next_color_before_any_step(self, rng):
        walk = EdgeProcess(cycle_graph(4), 0, rng=rng)
        assert walk.next_color == BLUE
        assert walk.last_color is None

    def test_in_red_phase_after_exhaustion(self, rng):
        walk = EdgeProcess(cycle_graph(4), 0, rng=rng)
        walk.run_until_edge_cover()
        assert walk.in_red_phase
        walk.step()
        assert walk.last_color == RED

    def test_phase_marks_alternate(self, rng_factory):
        g = random_connected_regular_graph(40, 4, rng_factory(1))
        walk = EdgeProcess(g, 0, rng=rng_factory(2))
        walk.run_until_edge_cover()
        colors = [mark.color for mark in walk.phase_marks]
        assert colors[0] == BLUE
        for a, b in zip(colors, colors[1:]):
            assert a != b


class TestEdgeCoverSandwich:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda rng: torus_grid(5, 5),
            lambda rng: hypercube_graph(4),
            lambda rng: double_cycle(12),
            lambda rng: random_connected_regular_graph(40, 4, rng),
        ],
    )
    def test_lower_bound_deterministic(self, graph_factory, rng_factory):
        # C_E >= m holds for every single run (each step visits <= 1 edge).
        g = graph_factory(rng_factory(5))
        walk = EdgeProcess(g, 0, rng=rng_factory(6))
        steps = walk.run_until_edge_cover()
        assert steps >= g.m

    def test_sandwich_in_expectation(self, rng_factory):
        # eq (3): m <= E[C_E] <= m + C_V(SRW).  We check the measured mean
        # against the sandwich with the measured SRW cover mean.
        from repro.walks.srw import SimpleRandomWalk

        g = random_connected_regular_graph(60, 4, rng_factory(7))
        trials = 15
        ce = []
        cv_srw = []
        for i in range(trials):
            walk = EdgeProcess(g, 0, rng=rng_factory(100 + i))
            ce.append(walk.run_until_edge_cover())
            srw = SimpleRandomWalk(g, 0, rng=rng_factory(200 + i))
            cv_srw.append(srw.run_until_vertex_cover())
        mean_ce = sum(ce) / trials
        mean_cv = sum(cv_srw) / trials
        low, high = edge_cover_sandwich(g.m, mean_cv)
        assert low <= mean_ce <= high * 1.5  # sampling slack on the upper side


class TestMultigraphSupport:
    def test_double_cycle_runs(self, rng):
        g = double_cycle(8)
        walk = EdgeProcess(g, 0, rng=rng, require_even_degrees=True)
        walk.run_until_edge_cover()
        assert walk.num_visited_edges == g.m

    def test_parallel_edges_distinct_candidates(self, rng):
        g = Graph(2, [(0, 1), (0, 1)])
        walk = EdgeProcess(g, 0, rng=rng)
        assert sorted(walk.blue_candidates(0)) == [(0, 1), (1, 1)]


class TestRecording:
    def test_red_trajectory(self, rng_factory):
        g = random_connected_regular_graph(30, 4, rng_factory(9))
        walk = EdgeProcess(g, 0, rng=rng_factory(10), record_red_trajectory=True)
        walk.run_until_vertex_cover()
        assert walk.red_trajectory[0] == 0
        assert len(walk.red_trajectory) == walk.red_steps + 1

    def test_phases_disabled(self, rng):
        walk = EdgeProcess(cycle_graph(5), 0, rng=rng, record_phases=False)
        walk.run(3)
        assert walk.phase_marks == []
