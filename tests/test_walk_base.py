"""Tests for the shared walk framework (stepping, covers, budgets)."""

import pytest

from repro.errors import CoverTimeout, GraphError
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    lollipop_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.walks.base import default_step_budget
from repro.walks.srw import SimpleRandomWalk


class TestConstruction:
    def test_start_out_of_range(self, rng):
        with pytest.raises(GraphError):
            SimpleRandomWalk(cycle_graph(4), 9, rng=rng)

    def test_empty_graph_rejected(self, rng):
        with pytest.raises(GraphError):
            SimpleRandomWalk(Graph(0, []), 0, rng=rng)

    def test_isolated_start_rejected(self, rng):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            SimpleRandomWalk(g, 2, rng=rng)

    def test_time_zero_counts_as_visit(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 3, rng=rng)
        assert walk.num_visited_vertices == 1
        assert walk.first_visit_time[3] == 0
        assert walk.current == 3
        assert walk.steps == 0


class TestStepping:
    def test_step_advances_time_and_position(self, rng):
        g = path_graph(2)
        walk = SimpleRandomWalk(g, 0, rng=rng)
        nxt = walk.step()
        assert nxt == 1
        assert walk.steps == 1
        assert walk.first_visit_time[1] == 1

    def test_run_exact_steps(self, rng):
        walk = SimpleRandomWalk(cycle_graph(6), 0, rng=rng)
        walk.run(17)
        assert walk.steps == 17

    def test_first_visit_recorded_once(self, rng):
        g = path_graph(2)
        walk = SimpleRandomWalk(g, 0, rng=rng)
        walk.run(10)
        assert walk.first_visit_time[1] == 1  # not overwritten by revisits


class TestVertexCover:
    def test_cover_completes(self, rng):
        walk = SimpleRandomWalk(cycle_graph(10), 0, rng=rng)
        steps = walk.run_until_vertex_cover()
        assert walk.vertices_covered
        assert steps == walk.steps
        assert steps >= 9  # at least n-1 moves

    def test_single_vertex_trivial_cover(self, rng):
        walk = SimpleRandomWalk(Graph(1, [(0, 0)]), 0, rng=rng)
        assert walk.run_until_vertex_cover() == 0

    def test_timeout_raises_with_diagnostics(self, rng):
        walk = SimpleRandomWalk(cycle_graph(50), 0, rng=rng)
        with pytest.raises(CoverTimeout) as info:
            walk.run_until_vertex_cover(max_steps=3)
        assert info.value.steps == 3
        assert info.value.remaining > 0

    def test_default_budget_scales(self):
        assert default_step_budget(cycle_graph(10)) > default_step_budget(cycle_graph(3))

    def test_default_budget_is_edge_aware(self):
        # Regression: the budget used to be 10_000 + 20*n^2, which Θ(n³)
        # worst cases (SRW on dense bottleneck graphs, cover ≤ 2m(n-1))
        # legitimately exceed.  The edge-aware budget must dominate that
        # classical bound with margin on every graph.
        for g in (
            cycle_graph(50),
            complete_graph(40),
            lollipop_graph(30, 15),
            barbell_graph(20, 5),
        ):
            assert default_step_budget(g) >= 4 * g.m * (g.n - 1)

    def test_budget_grows_with_multiplicity(self):
        # Parallel edges slow the SRW down; the budget must notice them.
        sparse = Graph(10, [(i, (i + 1) % 10) for i in range(10)])
        dense = Graph(10, [(i, (i + 1) % 10) for i in range(10)] * 40)
        assert default_step_budget(dense) > default_step_budget(sparse)

    def test_lollipop_covers_within_default_budget(self, rng):
        # The Θ(n³)-flavoured fixture that used to trip CoverTimeout.
        walk = SimpleRandomWalk(lollipop_graph(14, 7), 0, rng=rng)
        steps = walk.run_until_vertex_cover()
        assert walk.vertices_covered
        assert steps <= default_step_budget(walk.graph)


class TestEdgeTracking:
    def test_disabled_by_default(self, rng):
        walk = SimpleRandomWalk(cycle_graph(4), 0, rng=rng)
        assert not walk.tracks_edges
        with pytest.raises(GraphError):
            _ = walk.edges_covered
        with pytest.raises(GraphError):
            walk.run_until_edge_cover()
        with pytest.raises(GraphError):
            walk.unvisited_edges()

    def test_edge_cover(self, rng):
        g = star_graph(4)
        walk = SimpleRandomWalk(g, 0, rng=rng, track_edges=True)
        steps = walk.run_until_edge_cover()
        assert walk.edges_covered
        assert steps >= g.m

    def test_edge_visit_time_is_arrival_step(self, rng):
        g = path_graph(2)
        walk = SimpleRandomWalk(g, 0, rng=rng, track_edges=True)
        walk.step()
        assert walk.first_edge_visit_time[0] == 1

    def test_unvisited_lists(self, rng):
        g = path_graph(3)
        walk = SimpleRandomWalk(g, 0, rng=rng, track_edges=True)
        walk.step()  # 0 -> 1
        assert 2 in walk.unvisited_vertices()
        assert walk.unvisited_edges() == [1]


class TestRepr:
    def test_repr_mentions_progress(self, rng):
        walk = SimpleRandomWalk(cycle_graph(4), 0, rng=rng)
        assert "covered=1/4" in repr(walk)
