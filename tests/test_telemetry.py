"""Tests for the telemetry layer: core context, heartbeat, JSONL, manifests.

The bit-identity half of the contract (telemetry on == telemetry off,
per engine) lives in ``tests/test_telemetry_identity.py``; this module
covers the instrumentation machinery itself.
"""

import io
import json

import pytest

from repro.errors import ReproError
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import STORE_SCHEMA_VERSION, ResultStore
from repro.sim.runner import TrialOutcome
from repro.telemetry import (
    MANIFEST_SCHEMA_VERSION,
    NULL_TELEMETRY,
    HeartbeatReporter,
    NullTelemetry,
    Telemetry,
    TelemetryJSONLWriter,
    build_manifest,
    get_telemetry,
    peak_rss_bytes,
    session,
    set_telemetry,
    validate_manifest,
    validate_manifest_file,
)


class TestCore:
    def test_default_context_is_null_and_disabled(self):
        tel = get_telemetry()
        assert tel is NULL_TELEMETRY
        assert tel.enabled is False

    def test_null_methods_are_noops(self):
        null = NullTelemetry()
        null.count("x", 5)
        null.gauge("g", 1.0)
        null.time_add("t", 0.5)
        null.event("e", a=1)
        null.progress(step=10)
        assert null.counters == {} and null.gauges == {} and null.timings == {}

    def test_counters_gauges_timings_accumulate(self):
        tel = Telemetry()
        tel.count("a")
        tel.count("a", 4)
        tel.gauge("g", 1.5)
        tel.gauge("g", 2.5)  # last write wins
        tel.time_add("t", 0.25)
        tel.time_add("t", 0.5)
        assert tel.counters["a"] == 5
        assert tel.gauges["g"] == 2.5
        assert tel.timings["t"] == pytest.approx(0.75)

    def test_timed_block_adds_time_and_call_count(self):
        tel = Telemetry()
        with tel.timed("work"):
            pass
        assert tel.timings["work"] >= 0.0
        assert tel.counters["work.calls"] == 1

    def test_snapshot_is_json_ready_and_sorted(self):
        tel = Telemetry()
        tel.count("b", 2)
        tel.count("a", 1)
        tel.gauge("g", 3.0)
        snap = tel.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must serialize

    def test_session_installs_and_restores(self):
        tel = Telemetry()
        assert get_telemetry() is NULL_TELEMETRY
        with session(tel) as active:
            assert active is tel
            assert get_telemetry() is tel
            inner = Telemetry()
            with session(inner):
                assert get_telemetry() is inner
            assert get_telemetry() is tel
        assert get_telemetry() is NULL_TELEMETRY

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with session(Telemetry()):
                raise RuntimeError("boom")
        assert get_telemetry() is NULL_TELEMETRY

    def test_set_telemetry_none_restores_null(self):
        set_telemetry(Telemetry())
        try:
            assert get_telemetry().enabled
        finally:
            set_telemetry(None)
        assert get_telemetry() is NULL_TELEMETRY

    def test_peak_rss_bytes_is_positive_monotone(self):
        first = peak_rss_bytes()
        assert isinstance(first, int) and first > 0
        assert peak_rss_bytes() >= first


class _FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


class TestHeartbeat:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ReproError):
            HeartbeatReporter(0)
        with pytest.raises(ReproError):
            HeartbeatReporter(-1.0)
        with pytest.raises(ReproError):
            HeartbeatReporter("soon")

    def test_silent_until_interval_elapses(self):
        clock = _FakeClock()
        out = io.StringIO()
        hb = HeartbeatReporter(10.0, stream=out, clock=clock)
        clock.now += 9.9
        assert hb.tick(step=100) is None
        assert out.getvalue() == ""
        assert hb.emitted == 0

    def test_emits_with_rate_from_deltas(self):
        clock = _FakeClock()
        out = io.StringIO()
        hb = HeartbeatReporter(10.0, stream=out, clock=clock)
        clock.now += 10.0
        payload = hb.tick(step=50_000, done=30, total=100, unit="vertices", label="walk")
        assert payload is not None
        assert payload["step"] == 50_000
        assert payload["steps_per_sec"] == 5000
        assert payload["pct"] == 30.0
        assert "eta_s" not in payload  # no previous done observation yet
        line = out.getvalue()
        assert line.startswith("[hb walk]")
        assert "step=50,000" in line
        assert "vertices 30.0% (30/100)" in line
        # Second emission: ETA from the done-delta.
        clock.now += 10.0
        payload = hb.tick(step=100_000, done=60, total=100, unit="vertices")
        assert payload["steps_per_sec"] == 5000
        assert payload["eta_s"] == pytest.approx(100.0 / 7.5, abs=0.2)
        assert hb.emitted == 2

    def test_backwards_step_resets_rate_baseline(self):
        clock = _FakeClock()
        hb = HeartbeatReporter(10.0, stream=io.StringIO(), clock=clock)
        clock.now += 10.0
        hb.tick(step=90_000)
        clock.now += 10.0
        payload = hb.tick(step=2_000)  # a new trial restarted the counter
        assert payload["steps_per_sec"] == 200

    def test_progress_mirrors_into_writer_and_counts(self, tmp_path):
        clock = _FakeClock()
        writer = TelemetryJSONLWriter(tmp_path / "t.jsonl")
        tel = Telemetry(
            heartbeat=HeartbeatReporter(5.0, stream=io.StringIO(), clock=clock),
            writer=writer,
        )
        tel.progress(step=10)  # below interval: nothing
        clock.now += 5.0
        tel.progress(step=20)
        assert tel.counters["heartbeat.lines"] == 1
        writer.close()
        lines = [json.loads(l) for l in (tmp_path / "t.jsonl").read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["kind"] == "heartbeat"
        assert lines[0]["step"] == 20


class TestJSONLWriter:
    def test_events_stream_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = TelemetryJSONLWriter(path)
        writer.event("trial", trial=0, steps=42)
        writer.event("trial", trial=1, steps=43)
        writer.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["trial"] for l in lines] == [0, 1]
        assert all(l["kind"] == "trial" and "at" in l for l in lines)
        assert writer.events_written == 2

    def test_truncates_previous_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("stale\n")
        TelemetryJSONLWriter(path).close()
        assert path.read_text() == ""

    def test_finish_appends_manifest_and_goes_inert(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = TelemetryJSONLWriter(path)
        writer.event("trial", trial=0)
        writer.finish({"kind": "manifest", "command": "test"})
        assert writer.finished
        writer.event("trial", trial=1)  # dropped, not raised
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["kind"] == "manifest"

    def test_unwritable_path_raises_repro_error(self, tmp_path):
        with pytest.raises(ReproError):
            TelemetryJSONLWriter(tmp_path)  # a directory

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        TelemetryJSONLWriter(path).close()
        assert path.exists()


class TestManifest:
    def _manifest(self, **kwargs):
        tel = Telemetry()
        tel.count("runner.steps", 123)
        return build_manifest(tel, command="cover", **kwargs)

    def test_build_produces_valid_manifest(self):
        manifest = self._manifest(engine="fleet", walk="srw", backend="regular")
        assert validate_manifest(manifest) is manifest
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["counters"]["runner.steps"] == 123
        assert manifest["engine"] == "fleet"
        assert manifest["heartbeats"] == 0
        assert manifest["peak_rss_bytes"] > 0
        assert manifest["env"]["python"]
        json.dumps(manifest)

    def test_heartbeat_count_lands_in_manifest(self):
        clock = _FakeClock()
        hb = HeartbeatReporter(1.0, stream=io.StringIO(), clock=clock)
        tel = Telemetry(heartbeat=hb)
        clock.now += 1.0
        tel.progress(step=5)
        manifest = build_manifest(tel, command="cover")
        assert manifest["heartbeats"] == 1

    def test_validate_rejects_bad_schema(self):
        manifest = self._manifest()
        manifest["schema"] = 99
        with pytest.raises(ReproError, match="schema"):
            validate_manifest(manifest)

    def test_validate_rejects_non_integer_counter(self):
        manifest = self._manifest()
        manifest["counters"]["runner.steps"] = "lots"
        with pytest.raises(ReproError, match="counter"):
            validate_manifest(manifest)

    def test_validate_rejects_bad_status(self):
        manifest = self._manifest()
        manifest["status"] = "meh"
        with pytest.raises(ReproError, match="status"):
            validate_manifest(manifest)

    def test_error_status_is_valid(self):
        assert validate_manifest(self._manifest(status="error"))["status"] == "error"

    def test_file_validation_happy_path(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = TelemetryJSONLWriter(path)
        writer.event("trial", trial=0)
        writer.finish(self._manifest())
        manifest = validate_manifest_file(path)
        assert manifest["command"] == "cover"

    def test_file_validation_rejects_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            validate_manifest_file(tmp_path / "absent.jsonl")

    def test_file_validation_rejects_no_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind":"trial"}\n')
        with pytest.raises(ReproError, match="no manifest"):
            validate_manifest_file(path)

    def test_file_validation_rejects_manifest_not_last(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(self._manifest()) + "\n" + '{"kind":"trial"}\n'
        )
        with pytest.raises(ReproError, match="not the final line"):
            validate_manifest_file(path)

    def test_file_validation_rejects_duplicate_manifest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        line = json.dumps(self._manifest())
        path.write_text(line + "\n" + line + "\n")
        with pytest.raises(ReproError, match="more than one"):
            validate_manifest_file(path)

    def test_file_validation_rejects_unparseable_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json\n" + json.dumps(self._manifest()) + "\n")
        with pytest.raises(ReproError, match="unparseable"):
            validate_manifest_file(path)

    def test_module_main_exit_codes(self, tmp_path, capsys):
        from repro.telemetry.manifest import main as manifest_main

        path = tmp_path / "run.jsonl"
        TelemetryJSONLWriter(path).finish(self._manifest())
        assert manifest_main([str(path)]) == 0
        assert "manifest ok" in capsys.readouterr().out
        assert manifest_main([str(tmp_path / "absent.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


def _spec(**overrides):
    base = dict(
        family="cycle",
        family_params={"n": 16},
        walk="srw",
        trials=3,
        root_seed=7,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestStoreIntegration:
    def test_peak_rss_bytes_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec()
        outcome = TrialOutcome(
            trial=0, steps=42, extras={}, wall_time=0.5, peak_rss_bytes=123_456_789
        )
        store.record(spec, outcome)
        record = store.trials_for(spec)[0]
        assert record.peak_rss_bytes == 123_456_789
        assert record.to_outcome().peak_rss_bytes == 123_456_789

    def test_schema_v1_line_is_quarantined_not_reinterpreted(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _spec()
        store.record(spec, TrialOutcome(trial=0, steps=42, extras={}, wall_time=0.1))
        shard = store._shard_path(spec.spec_hash)
        v1 = json.loads(shard.read_text().splitlines()[0])
        v1["schema"] = 1
        v1["trial"] = 1
        v1.pop("peak_rss_bytes", None)
        with shard.open("a") as fh:
            fh.write(json.dumps(v1) + "\n")
        tel = Telemetry()
        with session(tel):
            records = store.trials_for(spec)
        assert sorted(records) == [0]
        assert store.quarantined_count(spec) == 1
        assert tel.counters["store.quarantined_lines"] == 1

    def test_record_manifest_and_listing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        tel = Telemetry()
        tel.count("runner.steps", 7)
        manifest = build_manifest(tel, command="sweep", walk="srw")
        first = store.record_manifest(manifest)
        second = store.record_manifest(manifest)  # same stamp: deduped name
        assert first.exists() and second.exists() and first != second
        listed = store.manifests()
        assert [p for p, _ in listed] == sorted([first, second])
        assert all(m["command"] == "sweep" for _, m in listed)

    def test_scheduler_counts_cached_vs_scheduled(self, tmp_path):
        from repro.experiments.scheduler import run_point

        store = ResultStore(tmp_path / "store")
        spec = _spec(family_params={"n": 12}, trials=2)
        run_point(spec, store=store)  # cold: both trials computed
        tel = Telemetry()
        with session(tel):
            run_point(spec, store=store)  # warm: both cached
        assert tel.counters["scheduler.points"] == 1
        assert tel.counters["scheduler.trials_cached"] == 2
        assert tel.counters.get("scheduler.trials_scheduled", 0) == 0
        assert "store.checkpoints" not in tel.counters


class TestProgressRouting:
    def test_print_progress_goes_to_stderr(self, capsys):
        from repro.experiments import print_progress

        print_progress("working...")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "working...\n"


class TestCLITelemetry:
    def test_cover_with_telemetry_writes_valid_manifest(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cover.jsonl"
        code = main(
            [
                "cover", "--family", "cycle", "--n", "40", "--walk", "srw",
                "--trials", "2", "--seed", "3", "--engine", "fleet",
                "--native", "off", "--telemetry", str(path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert f"telemetry: {path}" in captured.err
        manifest = validate_manifest_file(path)
        assert manifest["command"] == "cover"
        assert manifest["walk"] == "srw"
        assert manifest["engine"] == "fleet"
        assert manifest["status"] == "ok"
        assert manifest["counters"]["runner.trials"] == 2
        # The counters reconcile with the run: total fleet steps == the
        # sum of the per-trial cover times the runner aggregated.
        assert manifest["counters"]["runner.steps"] > 0

    def test_cover_without_flags_is_untouched(self, capsys):
        from repro.cli import main
        from repro.telemetry import get_telemetry

        assert main(["cover", "--family", "cycle", "--n", "30", "--walk", "srw",
                     "--trials", "1", "--seed", "3"]) == 0
        assert get_telemetry() is NULL_TELEMETRY
        assert "telemetry:" not in capsys.readouterr().err

    def test_invalid_heartbeat_interval_errors(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["cover", "--family", "cycle", "--n", "30", "--walk", "srw",
                     "--trials", "1", "--heartbeat", "0"])
        assert code == 2
        assert "heartbeat interval" in capsys.readouterr().err

    def test_verbose_and_quiet_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["-vv", "cover", "--family", "cycle", "--n", "30"]
        )
        assert args.verbose == 2 and args.quiet == 0
        args = build_parser().parse_args(["-q", "store", "ls"])
        assert args.quiet == 1

    def test_sweep_saves_manifest_into_store(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        code = main(
            [
                "sweep", "--family", "cycle", "--sizes", "20", "--walk", "srw",
                "--trials", "1", "--seed", "5", "--store", str(store_dir),
                "--telemetry", str(tmp_path / "sweep.jsonl"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "manifest: " in captured.err
        saved = ResultStore(store_dir).manifests()
        assert len(saved) == 1
        assert saved[0][1]["command"] == "sweep"

    def test_store_ls_manifests_table(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        store = ResultStore(store_dir)
        tel = Telemetry()
        tel.count("runner.steps", 999)
        store.record_manifest(build_manifest(tel, command="sweep", walk="srw"))
        assert main(["store", "ls", "--manifests", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "run manifests" in out
        assert "sweep" in out and "999" in out
