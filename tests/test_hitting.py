"""Tests for exact hitting/commute/return times and cover-time bounds."""

import math

import numpy as np
import pytest

from repro.errors import SpectralError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    lollipop_graph,
    path_graph,
    petersen_graph,
)
from repro.graphs.graph import Graph
from repro.spectral.hitting import (
    best_kklv_lower_bound,
    commute_time,
    expected_return_time,
    fundamental_matrix,
    hitting_time,
    hitting_time_matrix,
    hitting_time_to_set,
    kklv_lower_bound,
    matthews_upper_bound,
)
from repro.spectral.matrices import stationary_distribution
from repro.walks.srw import SimpleRandomWalk


class TestFundamentalMatrix:
    def test_rows_sum_to_one(self):
        # Z = (I - P + 1pi)^(-1) has row sums 1 (since (I-P+1pi) 1 = 1).
        Z = fundamental_matrix(petersen_graph())
        assert np.allclose(Z.sum(axis=1), 1.0)

    def test_stationary_left_eigenvector(self):
        g = cycle_graph(6)
        Z = fundamental_matrix(g)
        pi = stationary_distribution(g)
        assert np.allclose(pi @ Z, pi)


class TestHittingTimes:
    def test_cycle_closed_form(self):
        # On C_n, E_u T_v = k (n - k) where k is the hop distance.
        n = 9
        g = cycle_graph(n)
        H = hitting_time_matrix(g)
        for k in range(1, n):
            assert H[0, k] == pytest.approx(k * (n - k), rel=1e-9)

    def test_complete_closed_form(self):
        n = 7
        H = hitting_time_matrix(complete_graph(n))
        off_diag = H[~np.eye(n, dtype=bool)]
        assert np.allclose(off_diag, n - 1)

    def test_path_endpoint_quadratic(self):
        # On P_n, hitting time end-to-end is (n-1)^2.
        n = 6
        assert hitting_time(path_graph(n), 0, n - 1) == pytest.approx((n - 1) ** 2)

    def test_matrix_matches_direct_solver(self):
        g = petersen_graph()
        H = hitting_time_matrix(g)
        for u, v in [(0, 1), (3, 8), (9, 0)]:
            assert H[u, v] == pytest.approx(hitting_time(g, u, v), rel=1e-9)

    def test_diagonal_zero(self):
        H = hitting_time_matrix(cycle_graph(5))
        assert np.allclose(np.diag(H), 0.0)

    def test_set_hitting_less_than_single(self):
        g = cycle_graph(10)
        both = hitting_time_to_set(g, 0, {3, 7})
        single = hitting_time(g, 0, 3)
        assert both < single

    def test_set_hitting_zero_if_inside(self):
        assert hitting_time_to_set(cycle_graph(5), 2, {2}) == 0.0

    def test_empty_target_rejected(self):
        with pytest.raises(SpectralError):
            hitting_time_to_set(cycle_graph(5), 0, set())

    def test_disconnected_rejected(self):
        with pytest.raises(SpectralError):
            hitting_time_matrix(Graph(4, [(0, 1), (2, 3)]))


class TestReturnAndCommute:
    def test_return_time_identity(self):
        # E_v T_v^+ = 2m / d(v), Aldous-Fill.
        g = lollipop_graph(4, 2)
        for v in range(g.n):
            assert expected_return_time(g, v) == pytest.approx(2 * g.m / g.degree(v))

    def test_commute_symmetric(self):
        g = petersen_graph()
        H = hitting_time_matrix(g)
        assert commute_time(g, 2, 7, H) == pytest.approx(commute_time(g, 7, 2, H))

    def test_commute_effective_resistance_cycle(self):
        # K(u,v) = 2m * R_eff; on a cycle R_eff = k(n-k)/n.
        n, k = 8, 3
        g = cycle_graph(n)
        expected = 2 * n * (k * (n - k) / n)
        assert commute_time(g, 0, k) == pytest.approx(expected, rel=1e-9)


class TestCoverBounds:
    def test_matthews_dominates_measured_cover(self, rng_factory):
        g = petersen_graph()
        bound = matthews_upper_bound(g)
        rng = rng_factory(3)
        covers = []
        for _ in range(60):
            walk = SimpleRandomWalk(g, 0, rng=rng)
            covers.append(walk.run_until_vertex_cover())
        assert sum(covers) / len(covers) <= bound

    def test_kklv_below_measured_cover(self, rng_factory):
        g = cycle_graph(12)
        bound = best_kklv_lower_bound(g)
        rng = rng_factory(4)
        covers = []
        for _ in range(60):
            walk = SimpleRandomWalk(g, 0, rng=rng)
            covers.append(walk.run_until_vertex_cover())
        mean = sum(covers) / len(covers)
        assert bound <= mean * 1.15  # small-sample slack

    def test_kklv_needs_two_vertices(self):
        with pytest.raises(SpectralError):
            kklv_lower_bound(cycle_graph(5), [0])

    def test_theorem5_shape_on_regular_graphs(self):
        # On regular graphs every vertex has pi_u = 1/n <= 2/n, so the
        # bound uses all of them; it must exceed (n/4) log(n/2) whenever
        # K_A >= n/2 (here: commute >= n on the cycle).
        n = 16
        g = cycle_graph(n)
        assert best_kklv_lower_bound(g) >= (n / 4) * math.log(n / 2)
