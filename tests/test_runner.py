"""Tests for the experiment runner."""

import random

import pytest

from repro.core.eprocess import EdgeProcess
from repro.errors import ReproError
from repro.graphs.generators import cycle_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.runner import cover_time_trials, sweep
from repro.walks.srw import SimpleRandomWalk


def _srw_factory(graph, start, rng):
    return SimpleRandomWalk(graph, start, rng=rng)


def _eprocess_factory(graph, start, rng):
    return EdgeProcess(graph, start, rng=rng, record_phases=False)


class TestCoverTimeTrials:
    def test_fixed_graph_reproducible(self):
        g = cycle_graph(12)
        a = cover_time_trials(g, _srw_factory, trials=4, root_seed=5)
        b = cover_time_trials(g, _srw_factory, trials=4, root_seed=5)
        assert a.cover_times == b.cover_times

    def test_seed_changes_results(self):
        g = cycle_graph(12)
        a = cover_time_trials(g, _srw_factory, trials=4, root_seed=5)
        b = cover_time_trials(g, _srw_factory, trials=4, root_seed=6)
        assert a.cover_times != b.cover_times

    def test_label_isolates_measurements(self):
        g = cycle_graph(12)
        a = cover_time_trials(g, _srw_factory, trials=4, root_seed=5, label="x")
        b = cover_time_trials(g, _srw_factory, trials=4, root_seed=5, label="y")
        assert a.cover_times != b.cover_times

    def test_graph_factory_fresh_per_trial(self):
        built = []

        def factory(rng):
            g = random_connected_regular_graph(16, 4, rng)
            built.append(g)
            return g

        run = cover_time_trials(factory, _eprocess_factory, trials=3, root_seed=9)
        assert len(built) == 3
        assert len({g for g in built}) > 1  # fresh samples, not one graph
        assert len(run.cover_times) == 3

    def test_fixed_start(self):
        g = cycle_graph(10)
        run = cover_time_trials(g, _srw_factory, trials=2, root_seed=1, start=3)
        assert run.stats.count == 2

    def test_edge_target(self):
        g = cycle_graph(10)
        run = cover_time_trials(g, _eprocess_factory, trials=2, root_seed=1, target="edges")
        assert all(t >= g.m for t in run.cover_times)

    def test_extra_metrics_aggregated(self):
        g = cycle_graph(10)
        run = cover_time_trials(
            g,
            _eprocess_factory,
            trials=3,
            root_seed=2,
            extra_metrics=lambda walk: {"red": walk.red_steps, "blue": walk.blue_steps},
        )
        assert set(run.extras) == {"red", "blue"}
        assert run.extras["blue"].count == 3

    def test_validation(self):
        g = cycle_graph(5)
        with pytest.raises(ReproError):
            cover_time_trials(g, _srw_factory, trials=0, root_seed=1)
        with pytest.raises(ReproError):
            cover_time_trials(g, _srw_factory, trials=1, root_seed=1, target="faces")


class TestSweep:
    def test_runs_in_order(self):
        g = cycle_graph(8)
        runs = sweep([1, 2, 3], lambda k: cover_time_trials(g, _srw_factory, trials=int(k), root_seed=4))
        assert [r.stats.count for r in runs] == [1, 2, 3]


def _regular_workload(rng):
    """Module-level (picklable) workload for the worker-pool tests."""
    return random_connected_regular_graph(24, 4, rng)


class TestStartValidation:
    def test_non_numeric_string_raises_repro_error(self):
        g = cycle_graph(6)
        with pytest.raises(ReproError, match="start must be"):
            cover_time_trials(g, _srw_factory, trials=1, root_seed=1, start="nope")

    def test_numeric_string_accepted(self):
        g = cycle_graph(6)
        run = cover_time_trials(g, _srw_factory, trials=2, root_seed=1, start="3")
        assert run.stats.count == 2

    def test_out_of_range_start_names_trial(self):
        g = cycle_graph(5)
        with pytest.raises(ReproError, match="trial 0.*out of range"):
            cover_time_trials(g, _srw_factory, trials=2, root_seed=1, start=99)

    def test_negative_start_rejected(self):
        g = cycle_graph(5)
        with pytest.raises(ReproError, match="out of range"):
            cover_time_trials(g, _srw_factory, trials=1, root_seed=1, start=-2)

    def test_non_convertible_start_rejected(self):
        g = cycle_graph(5)
        with pytest.raises(ReproError, match="start must be"):
            cover_time_trials(g, _srw_factory, trials=1, root_seed=1, start=object())


class TestEngineAndWorkers:
    def test_engine_validation(self):
        g = cycle_graph(8)
        with pytest.raises(ReproError):
            cover_time_trials(g, "srw", trials=1, root_seed=1, engine="bogus")
        with pytest.raises(ReproError):
            cover_time_trials(g, _srw_factory, trials=1, root_seed=1, engine="array")
        with pytest.raises(ReproError):
            cover_time_trials(g, "srw", trials=1, root_seed=1, workers=0)

    def test_array_engine_matches_reference_exactly(self):
        g = random_connected_regular_graph(40, 4, random.Random(2))
        for walk in ("srw", "eprocess"):
            ref = cover_time_trials(g, walk, trials=6, root_seed=13)
            arr = cover_time_trials(g, walk, trials=6, root_seed=13, engine="array")
            assert arr.cover_times == ref.cover_times

    def test_array_engine_edge_target(self):
        g = cycle_graph(14)
        ref = cover_time_trials(g, "eprocess", trials=3, root_seed=5, target="edges")
        arr = cover_time_trials(
            g, "eprocess", trials=3, root_seed=5, target="edges", engine="array"
        )
        assert arr.cover_times == ref.cover_times

    def test_workers_do_not_change_results(self):
        serial = cover_time_trials(_regular_workload, "srw", trials=6, root_seed=21)
        pooled = cover_time_trials(
            _regular_workload, "srw", trials=6, root_seed=21, workers=3
        )
        assert pooled.cover_times == serial.cover_times

    def test_array_workers_reproduce_reference_serial(self):
        # The issue's headline determinism claim: engine="array", workers=4
        # replays engine="reference", workers=1 cover times exactly.
        serial = cover_time_trials(
            _regular_workload, "eprocess", trials=8, root_seed=3,
            engine="reference", workers=1,
        )
        pooled = cover_time_trials(
            _regular_workload, "eprocess", trials=8, root_seed=3,
            engine="array", workers=4,
        )
        assert pooled.cover_times == serial.cover_times

    def test_worker_pool_propagates_validation_errors(self):
        g = cycle_graph(5)
        with pytest.raises(ReproError, match="out of range"):
            cover_time_trials(g, "srw", trials=4, root_seed=1, start=77, workers=2)
