"""Tests for the experiment runner."""

import pytest

from repro.core.eprocess import EdgeProcess
from repro.errors import ReproError
from repro.graphs.generators import cycle_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.runner import cover_time_trials, sweep
from repro.walks.srw import SimpleRandomWalk


def _srw_factory(graph, start, rng):
    return SimpleRandomWalk(graph, start, rng=rng)


def _eprocess_factory(graph, start, rng):
    return EdgeProcess(graph, start, rng=rng, record_phases=False)


class TestCoverTimeTrials:
    def test_fixed_graph_reproducible(self):
        g = cycle_graph(12)
        a = cover_time_trials(g, _srw_factory, trials=4, root_seed=5)
        b = cover_time_trials(g, _srw_factory, trials=4, root_seed=5)
        assert a.cover_times == b.cover_times

    def test_seed_changes_results(self):
        g = cycle_graph(12)
        a = cover_time_trials(g, _srw_factory, trials=4, root_seed=5)
        b = cover_time_trials(g, _srw_factory, trials=4, root_seed=6)
        assert a.cover_times != b.cover_times

    def test_label_isolates_measurements(self):
        g = cycle_graph(12)
        a = cover_time_trials(g, _srw_factory, trials=4, root_seed=5, label="x")
        b = cover_time_trials(g, _srw_factory, trials=4, root_seed=5, label="y")
        assert a.cover_times != b.cover_times

    def test_graph_factory_fresh_per_trial(self):
        built = []

        def factory(rng):
            g = random_connected_regular_graph(16, 4, rng)
            built.append(g)
            return g

        run = cover_time_trials(factory, _eprocess_factory, trials=3, root_seed=9)
        assert len(built) == 3
        assert len({g for g in built}) > 1  # fresh samples, not one graph
        assert len(run.cover_times) == 3

    def test_fixed_start(self):
        g = cycle_graph(10)
        run = cover_time_trials(g, _srw_factory, trials=2, root_seed=1, start=3)
        assert run.stats.count == 2

    def test_edge_target(self):
        g = cycle_graph(10)
        run = cover_time_trials(g, _eprocess_factory, trials=2, root_seed=1, target="edges")
        assert all(t >= g.m for t in run.cover_times)

    def test_extra_metrics_aggregated(self):
        g = cycle_graph(10)
        run = cover_time_trials(
            g,
            _eprocess_factory,
            trials=3,
            root_seed=2,
            extra_metrics=lambda walk: {"red": walk.red_steps, "blue": walk.blue_steps},
        )
        assert set(run.extras) == {"red", "blue"}
        assert run.extras["blue"].count == 3

    def test_validation(self):
        g = cycle_graph(5)
        with pytest.raises(ReproError):
            cover_time_trials(g, _srw_factory, trials=0, root_seed=1)
        with pytest.raises(ReproError):
            cover_time_trials(g, _srw_factory, trials=1, root_seed=1, target="faces")


class TestSweep:
    def test_runs_in_order(self):
        g = cycle_graph(8)
        runs = sweep([1, 2, 3], lambda k: cover_time_trials(g, _srw_factory, trials=int(k), root_seed=4))
        assert [r.stats.count for r in runs] == [1, 2, 3]
