"""Test package (package form so `tests.strategies` imports resolve)."""
