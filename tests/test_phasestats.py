"""Tests for phase statistics."""

import pytest

from repro.core.eprocess import EdgeProcess
from repro.core.phasestats import phase_statistics
from repro.errors import ReproError
from repro.graphs.generators import cycle_graph
from repro.graphs.random_regular import random_connected_regular_graph


class TestPhaseStatistics:
    def test_cycle_single_sweep(self, rng):
        n = 10
        walk = EdgeProcess(cycle_graph(n), 0, rng=rng)
        walk.run_until_edge_cover()
        stats = phase_statistics(walk)
        assert stats.num_blue_phases == 1
        assert stats.num_red_phases == 0
        assert stats.first_blue_length == n
        assert stats.blue_fraction == 1.0
        assert stats.first_blue_edge_share == 1.0

    def test_first_sweep_dominates_on_even_expanders(self, rng_factory):
        # the paper's narrative: the initial blue phase consumes a large
        # share of the edges before the first red phase starts
        g = random_connected_regular_graph(200, 4, rng_factory(1))
        walk = EdgeProcess(g, 0, rng=rng_factory(2))
        walk.run_until_vertex_cover()
        stats = phase_statistics(walk)
        assert stats.first_blue_edge_share > 0.3
        assert stats.longest_blue_length >= stats.first_blue_length * 0.99

    def test_counts_consistent_with_decomposition(self, rng_factory):
        from repro.core.phases import phase_decomposition

        g = random_connected_regular_graph(100, 4, rng_factory(3))
        walk = EdgeProcess(g, 0, rng=rng_factory(4))
        walk.run_until_edge_cover()
        stats = phase_statistics(walk)
        phases = phase_decomposition(walk)
        assert stats.num_blue_phases + stats.num_red_phases == len(phases)

    def test_blue_fraction_matches_obs12(self, rng_factory):
        g = random_connected_regular_graph(100, 6, rng_factory(5))
        walk = EdgeProcess(g, 0, rng=rng_factory(6))
        walk.run_until_vertex_cover()
        stats = phase_statistics(walk)
        assert stats.blue_fraction == pytest.approx(walk.num_visited_edges / walk.steps)

    def test_no_steps_rejected(self, rng):
        walk = EdgeProcess(cycle_graph(4), 0, rng=rng)
        with pytest.raises(ReproError):
            phase_statistics(walk)

    def test_recording_disabled_rejected(self, rng):
        walk = EdgeProcess(cycle_graph(4), 0, rng=rng, record_phases=False)
        walk.run(2)
        with pytest.raises(ReproError):
            phase_statistics(walk)
