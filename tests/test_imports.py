"""Public-API surface tests: exports resolve and stay importable."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.graphs",
    "repro.spectral",
    "repro.walks",
    "repro.core",
    "repro.sim",
    "repro.engine",
    "repro.experiments",
]


class TestTopLevel:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_headline_objects_present(self):
        assert callable(repro.EdgeProcess)
        assert callable(repro.random_connected_regular_graph)
        assert callable(repro.verify_observation_10)


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_lazy_greedy_import(self):
        import repro.walks as walks

        assert callable(walks.GreedyRandomWalk)
        assert callable(walks.greedy_random_walk)

    def test_lazy_unknown_attribute_raises(self):
        import repro.walks as walks

        with pytest.raises(AttributeError):
            _ = walks.NotAWalk


class TestLeafModules:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graphs.graph",
            "repro.graphs.cycle_space",
            "repro.graphs.ramanujan",
            "repro.graphs.geometric",
            "repro.spectral.mixing",
            "repro.spectral.expanders",
            "repro.core.eprocess",
            "repro.core.goodness",
            "repro.core.phasestats",
            "repro.sim.blanket",
            "repro.sim.profiles",
            "repro.sim.plot",
            "repro.experiments.spec",
            "repro.experiments.store",
            "repro.experiments.scheduler",
            "repro.experiments.reports",
            "repro.cli",
        ],
    )
    def test_leaf_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"
