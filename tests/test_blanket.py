"""Tests for blanket-time measurements (eq. (4) machinery)."""

import pytest

from repro.errors import CoverTimeout, ReproError
from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.blanket import blanket_time, time_to_visit_counts
from repro.walks.srw import SimpleRandomWalk


class TestTimeToVisitCounts:
    def test_threshold_one_equals_vertex_cover(self, rng_factory):
        g = cycle_graph(12)
        a = SimpleRandomWalk(g, 0, rng=rng_factory(1))
        b = SimpleRandomWalk(g, 0, rng=rng_factory(1))
        t_counts = time_to_visit_counts(a, threshold=lambda v: 1)
        t_cover = b.run_until_vertex_cover()
        assert t_counts == t_cover

    def test_higher_threshold_takes_longer(self, rng_factory):
        g = complete_graph(6)
        a = SimpleRandomWalk(g, 0, rng=rng_factory(2))
        b = SimpleRandomWalk(g, 0, rng=rng_factory(2))
        t1 = time_to_visit_counts(a, threshold=lambda v: 1)
        t3 = time_to_visit_counts(b, threshold=lambda v: 3)
        assert t3 > t1

    def test_degree_threshold_dominates_eprocess_edge_need(self, rng_factory):
        # the eq.(4) route: once every v is visited d(v) times by the SRW,
        # the embedded E-process red walk must have exhausted every edge.
        g = random_connected_regular_graph(40, 4, rng_factory(3))
        walk = SimpleRandomWalk(g, 0, rng=rng_factory(4))
        t = time_to_visit_counts(walk, threshold=lambda v: g.degree(v))
        assert t >= g.n  # needs at least ~n*r visits total

    def test_fresh_walk_required(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 0, rng=rng)
        walk.step()
        with pytest.raises(ReproError):
            time_to_visit_counts(walk, threshold=lambda v: 1)

    def test_threshold_below_one_rejected(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 0, rng=rng)
        with pytest.raises(ReproError):
            time_to_visit_counts(walk, threshold=lambda v: 0)

    def test_budget_timeout(self, rng):
        walk = SimpleRandomWalk(cycle_graph(30), 0, rng=rng)
        with pytest.raises(CoverTimeout):
            time_to_visit_counts(walk, threshold=lambda v: 5, max_steps=10)


class TestBlanketTime:
    def test_reached_on_small_graph(self, rng):
        walk = SimpleRandomWalk(complete_graph(5), 0, rng=rng)
        t = blanket_time(walk, delta=0.3)
        assert t >= 1

    def test_smaller_delta_not_harder(self, rng_factory):
        g = cycle_graph(10)
        a = SimpleRandomWalk(g, 0, rng=rng_factory(5))
        b = SimpleRandomWalk(g, 0, rng=rng_factory(5))
        t_easy = blanket_time(a, delta=0.1)
        t_hard = blanket_time(b, delta=0.9)
        assert t_easy <= t_hard

    def test_delta_validation(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 0, rng=rng)
        with pytest.raises(ReproError):
            blanket_time(walk, delta=0.0)
        with pytest.raises(ReproError):
            blanket_time(walk, delta=1.0)

    def test_fresh_walk_required(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 0, rng=rng)
        walk.step()
        with pytest.raises(ReproError):
            blanket_time(walk)

    def test_blanket_dominates_cover(self, rng_factory):
        # tau_bl(delta) >= C_V by definition (every vertex needs visits)
        g = random_connected_regular_graph(30, 4, rng_factory(6))
        a = SimpleRandomWalk(g, 0, rng=rng_factory(7))
        b = SimpleRandomWalk(g, 0, rng=rng_factory(7))
        t_blanket = blanket_time(a, delta=0.5)
        t_cover = b.run_until_vertex_cover()
        assert t_blanket >= t_cover
