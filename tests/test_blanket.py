"""Tests for blanket-time measurements (eq. (4) machinery)."""

import random

import pytest

from repro.errors import CoverTimeout, ReproError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    lollipop_graph,
    petersen_graph,
)
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.blanket import blanket_time, time_to_visit_counts
from repro.spectral.matrices import stationary_distribution
from repro.walks.srw import SimpleRandomWalk


def _brute_force_blanket_time(graph, start, rng, delta, budget=10**7):
    """O(n)-per-step recomputation of the exact first satisfying step."""
    pi = stationary_distribution(graph)
    walk = SimpleRandomWalk(graph, start, rng=rng)
    counts = [0] * graph.n
    counts[start] = 1
    while walk.steps < budget:
        v = walk.step()
        counts[v] += 1
        t = walk.steps
        if all(counts[u] >= delta * pi[u] * t for u in range(graph.n)):
            return t
    raise AssertionError("brute-force budget exhausted")


class TestTimeToVisitCounts:
    def test_threshold_one_equals_vertex_cover(self, rng_factory):
        g = cycle_graph(12)
        a = SimpleRandomWalk(g, 0, rng=rng_factory(1))
        b = SimpleRandomWalk(g, 0, rng=rng_factory(1))
        t_counts = time_to_visit_counts(a, threshold=lambda v: 1)
        t_cover = b.run_until_vertex_cover()
        assert t_counts == t_cover

    def test_higher_threshold_takes_longer(self, rng_factory):
        g = complete_graph(6)
        a = SimpleRandomWalk(g, 0, rng=rng_factory(2))
        b = SimpleRandomWalk(g, 0, rng=rng_factory(2))
        t1 = time_to_visit_counts(a, threshold=lambda v: 1)
        t3 = time_to_visit_counts(b, threshold=lambda v: 3)
        assert t3 > t1

    def test_degree_threshold_dominates_eprocess_edge_need(self, rng_factory):
        # the eq.(4) route: once every v is visited d(v) times by the SRW,
        # the embedded E-process red walk must have exhausted every edge.
        g = random_connected_regular_graph(40, 4, rng_factory(3))
        walk = SimpleRandomWalk(g, 0, rng=rng_factory(4))
        t = time_to_visit_counts(walk, threshold=lambda v: g.degree(v))
        assert t >= g.n  # needs at least ~n*r visits total

    def test_fresh_walk_required(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 0, rng=rng)
        walk.step()
        with pytest.raises(ReproError):
            time_to_visit_counts(walk, threshold=lambda v: 1)

    def test_threshold_below_one_rejected(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 0, rng=rng)
        with pytest.raises(ReproError):
            time_to_visit_counts(walk, threshold=lambda v: 0)

    def test_budget_timeout(self, rng):
        walk = SimpleRandomWalk(cycle_graph(30), 0, rng=rng)
        with pytest.raises(CoverTimeout):
            time_to_visit_counts(walk, threshold=lambda v: 5, max_steps=10)


class TestBlanketTime:
    def test_reached_on_small_graph(self, rng):
        walk = SimpleRandomWalk(complete_graph(5), 0, rng=rng)
        t = blanket_time(walk, delta=0.3)
        assert t >= 1

    def test_smaller_delta_not_harder(self, rng_factory):
        g = cycle_graph(10)
        a = SimpleRandomWalk(g, 0, rng=rng_factory(5))
        b = SimpleRandomWalk(g, 0, rng=rng_factory(5))
        t_easy = blanket_time(a, delta=0.1)
        t_hard = blanket_time(b, delta=0.9)
        assert t_easy <= t_hard

    def test_delta_validation(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 0, rng=rng)
        with pytest.raises(ReproError):
            blanket_time(walk, delta=0.0)
        with pytest.raises(ReproError):
            blanket_time(walk, delta=1.0)

    def test_fresh_walk_required(self, rng):
        walk = SimpleRandomWalk(cycle_graph(5), 0, rng=rng)
        walk.step()
        with pytest.raises(ReproError):
            blanket_time(walk)

    def test_blanket_dominates_cover(self, rng_factory):
        # tau_bl(delta) >= C_V by definition (every vertex needs visits)
        g = random_connected_regular_graph(30, 4, rng_factory(6))
        a = SimpleRandomWalk(g, 0, rng=rng_factory(7))
        b = SimpleRandomWalk(g, 0, rng=rng_factory(7))
        t_blanket = blanket_time(a, delta=0.5)
        t_cover = b.run_until_vertex_cover()
        assert t_blanket >= t_cover

    def test_timeout_reports_deficit_size(self, rng):
        walk = SimpleRandomWalk(cycle_graph(40), 0, rng=rng)
        with pytest.raises(CoverTimeout) as info:
            blanket_time(walk, delta=0.9, max_steps=5)
        assert info.value.remaining >= 1


class TestBlanketTimeExactness:
    """Regression for the checkpoint-granularity bug: ``blanket_time``
    used to report the first *checkpoint* (``t`` a power of two or a
    multiple of ``n``) at which the condition held, inflating τ_bl(δ);
    it must return the exact first satisfying step, bit-for-bit equal to
    a brute-force O(n)-per-step recomputation.
    """

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("delta", [0.1, 0.3, 0.5, 0.77, 0.9])
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(15), complete_graph(8), petersen_graph()],
        ids=["cycle", "complete", "petersen"],
    )
    def test_matches_brute_force(self, graph, seed, delta):
        fast = blanket_time(
            SimpleRandomWalk(graph, 0, rng=random.Random(seed)), delta=delta
        )
        brute = _brute_force_blanket_time(graph, 0, random.Random(seed), delta)
        assert fast == brute

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("delta", [0.25, 0.6])
    def test_matches_brute_force_nonuniform_pi(self, seed, delta):
        # Irregular graph: the deficit thresholds differ per vertex.
        graph = lollipop_graph(5, 7)
        fast = blanket_time(
            SimpleRandomWalk(graph, 0, rng=random.Random(seed)), delta=delta
        )
        brute = _brute_force_blanket_time(graph, 0, random.Random(seed), delta)
        assert fast == brute

    def test_not_inflated_to_checkpoint(self):
        # At least one instance must land strictly between the old
        # checkpoint grid points (powers of two / multiples of n),
        # proving the exact scan reports earlier than the old code could.
        graph = petersen_graph()
        n = graph.n
        hits = []
        for seed in range(30):
            t = blanket_time(
                SimpleRandomWalk(graph, 0, rng=random.Random(seed)), delta=0.5
            )
            hits.append(t)
        assert any(t & (t - 1) != 0 and t % n != 0 for t in hits)
