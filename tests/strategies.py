"""Hypothesis strategies for graphs and walk inputs.

The central strategy, :func:`connected_even_multigraphs`, builds exactly the
paper's graph class: connected multigraphs in which every vertex has even
degree.  Construction: one Hamiltonian cycle over a random vertex
permutation (connectivity + even degrees), plus extra random closed walks
and loops (each preserves parity, may create parallel edges — the paper's
class includes multigraphs via its contraction arguments).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs.implicit import (
    ImplicitHashedRegular,
    ImplicitHypercube,
    ImplicitTorus,
)

__all__ = [
    "connected_even_multigraphs",
    "implicit_graphs",
    "simple_connected_graphs",
]


@st.composite
def connected_even_multigraphs(draw, min_vertices: int = 3, max_vertices: int = 20):
    """A connected even-degree multigraph (optionally with loops/parallels)."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    base = draw(st.permutations(list(range(n))))
    edges = [(base[i], base[(i + 1) % n]) for i in range(n)]
    extra_cycles = draw(st.integers(min_value=0, max_value=3))
    for _ in range(extra_cycles):
        length = draw(st.integers(min_value=3, max_value=min(n, 8)))
        cycle = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        for i in range(length):
            edges.append((cycle[i], cycle[(i + 1) % length]))
    num_loops = draw(st.integers(min_value=0, max_value=2))
    for _ in range(num_loops):
        v = draw(st.integers(min_value=0, max_value=n - 1))
        edges.append((v, v))
    return Graph(n, edges, name=f"hyp-even-{n}")


@st.composite
def simple_connected_graphs(draw, min_vertices: int = 2, max_vertices: int = 16):
    """A simple connected graph: random spanning tree plus extra edges."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    order = draw(st.permutations(list(range(n))))
    edges = set()
    for i in range(1, n):
        parent_pos = draw(st.integers(min_value=0, max_value=i - 1))
        u, v = order[parent_pos], order[i]
        edges.add((min(u, v), max(u, v)))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges), name=f"hyp-simple-{n}")


@st.composite
def implicit_graphs(draw, max_vertices: int = 64):
    """A small implicit neighbor-oracle graph from any of the families.

    Small enough to :meth:`materialize` cheaply, so every property test
    can compare the oracle against the explicit incidence structure.
    Hashed members may contain loops and parallel edges and need not be
    connected — tests that walk to cover should filter or pick keys.
    """
    family = draw(st.sampled_from(["hypercube", "torus", "hashed"]))
    if family == "hypercube":
        return ImplicitHypercube(draw(st.integers(min_value=1, max_value=6)))
    if family == "torus":
        rows = draw(st.integers(min_value=3, max_value=8))
        cols = draw(st.integers(min_value=3, max_value=max(3, max_vertices // rows)))
        return ImplicitTorus(rows, cols)
    degree = draw(st.integers(min_value=1, max_value=8))
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    if n * degree % 2:
        n += 1
    key = draw(st.integers(min_value=0, max_value=2**64 - 1))
    return ImplicitHashedRegular(n, degree, key)
