"""Tests for blue-component analysis (Observation 11, isolated stars)."""

import pytest

from repro.core.components import (
    blue_component_order_distribution,
    blue_components,
    blue_degree_map,
    isolated_blue_stars,
    maximal_blue_subgraph_at,
    verify_observation_11,
)
from repro.core.eprocess import EdgeProcess
from repro.core.phases import PhaseViolation
from repro.errors import ReproError
from repro.graphs.generators import cycle_graph, torus_grid
from repro.graphs.graph import Graph
from repro.graphs.random_regular import random_connected_regular_graph


def _run_to_red_phase(walk: EdgeProcess) -> None:
    """Advance the walk until it sits at a vertex with no blue edges."""
    while not walk.in_red_phase:
        walk.step()


class TestBlueComponents:
    def test_initial_state_single_component(self, rng):
        g = torus_grid(4, 4)
        walk = EdgeProcess(g, 0, rng=rng)
        comps = blue_components(walk)
        assert len(comps) == 1
        assert comps[0].order == g.n
        assert comps[0].size == g.m
        assert comps[0].contains_unvisited_vertex

    def test_after_edge_cover_no_components(self, rng):
        walk = EdgeProcess(cycle_graph(6), 0, rng=rng)
        walk.run_until_edge_cover()
        assert blue_components(walk) == []

    def test_component_edges_and_vertices_consistent(self, rng_factory):
        g = random_connected_regular_graph(40, 4, rng_factory(1))
        walk = EdgeProcess(g, 0, rng=rng_factory(2))
        _run_to_red_phase(walk)
        for comp in blue_components(walk):
            touched = set()
            for eid in comp.edge_ids:
                u, v = g.endpoints(eid)
                touched.add(u)
                touched.add(v)
            assert touched == set(comp.vertices)

    def test_order_distribution_sums(self, rng_factory):
        g = random_connected_regular_graph(40, 4, rng_factory(3))
        walk = EdgeProcess(g, 0, rng=rng_factory(4))
        _run_to_red_phase(walk)
        comps = blue_components(walk)
        hist = blue_component_order_distribution(walk)
        assert sum(hist.values()) == len(comps)
        assert sum(order * count for order, count in hist.items()) == sum(
            c.order for c in comps
        )


class TestMaximalBlueSubgraph:
    def test_matches_component_of_vertex(self, rng_factory):
        g = random_connected_regular_graph(40, 4, rng_factory(5))
        walk = EdgeProcess(g, 0, rng=rng_factory(6))
        _run_to_red_phase(walk)
        comps = blue_components(walk)
        if not comps:
            pytest.skip("walk finished all edges before first red phase")
        target = comps[0].vertices[0]
        s_star = maximal_blue_subgraph_at(walk, target)
        assert s_star == comps[0]

    def test_full_degree_at_unvisited_vertex(self, rng_factory):
        # Observation 11.3(a): unvisited v keeps its full degree inside S*_v.
        g = random_connected_regular_graph(60, 4, rng_factory(7))
        walk = EdgeProcess(g, 0, rng=rng_factory(8))
        _run_to_red_phase(walk)
        unvisited = walk.unvisited_vertices()
        if not unvisited:
            pytest.skip("everything visited in the first blue phase")
        v = unvisited[0]
        s_star = maximal_blue_subgraph_at(walk, v)
        inside_deg = sum(
            1
            for eid in s_star.edge_ids
            for endpoint in g.endpoints(eid)
            if endpoint == v
        )
        assert inside_deg == g.degree(v)

    def test_no_blue_edges_raises(self, rng):
        walk = EdgeProcess(cycle_graph(5), 0, rng=rng)
        walk.run_until_edge_cover()
        with pytest.raises(ReproError):
            maximal_blue_subgraph_at(walk, 0)


class TestObservation11:
    def test_holds_at_every_red_phase_entry(self, rng_factory):
        g = random_connected_regular_graph(50, 4, rng_factory(9))
        walk = EdgeProcess(g, 0, rng=rng_factory(10), require_even_degrees=True)
        checked = 0
        while not walk.edges_covered and checked < 10:
            if walk.in_red_phase:
                verify_observation_11(walk)
                checked += 1
                walk.step()  # move on so the loop advances
            else:
                walk.step()
        assert checked > 0

    def test_time_zero_valid(self, rng):
        walk = EdgeProcess(torus_grid(3, 3), 0, rng=rng)
        comps = verify_observation_11(walk)
        assert len(comps) == 1

    def test_mid_blue_phase_rejected(self, rng):
        walk = EdgeProcess(torus_grid(3, 3), 0, rng=rng)
        walk.step()
        with pytest.raises(PhaseViolation):
            verify_observation_11(walk)

    def test_odd_degrees_rejected(self, rng):
        from repro.graphs.generators import complete_graph

        walk = EdgeProcess(complete_graph(4), 0, rng=rng)
        with pytest.raises(PhaseViolation):
            verify_observation_11(walk)

    def test_blue_degree_map_copies(self, rng):
        walk = EdgeProcess(cycle_graph(4), 0, rng=rng)
        snapshot = blue_degree_map(walk)
        walk.step()
        assert snapshot != walk.blue_degree  # detached copy


class TestIsolatedStars:
    def test_hand_built_star_state(self, rng):
        # Build a graph where vertex 4 is the centre of a pendant star:
        # triangle core 0-1-2 with spokes, and star edges around 4.
        # Simpler: craft the state directly on a 3-regular-ish graph.
        g = Graph(
            5,
            [
                (0, 1), (1, 2), (2, 0),      # visited triangle
                (4, 0), (4, 1), (4, 2),      # blue star at 4
                (0, 3), (1, 3), (2, 3),      # visited edges to 3
            ],
        )
        walk = EdgeProcess(g, 0, rng=rng)
        # mark everything visited except the star edges 3,4,5
        for eid in (0, 1, 2, 6, 7, 8):
            walk.visited_edges[eid] = 1
            walk.num_visited_edges += 1
        for v in (0, 1, 2, 3):
            walk.visited_vertices[v] = 1
        walk.num_visited_vertices = 4
        # fix blue degree bookkeeping to match
        walk.blue_degree = [1, 1, 1, 0, 3]
        assert isolated_blue_stars(walk) == [4]

    def test_no_stars_initially(self, rng):
        g = torus_grid(3, 3)
        walk = EdgeProcess(g, 0, rng=rng)
        # start vertex visited; every other vertex has a full-blue component
        # that is the entire graph, not a star
        assert isolated_blue_stars(walk) == []

    def test_stars_appear_on_random_cubic_graphs(self, rng_factory):
        # Section 5: the blue walk leaves isolated stars behind on random
        # 3-regular graphs.  The *cumulative* set I (every vertex that ever
        # becomes a star centre) is Θ(n): the paper's independence heuristic
        # says n/8; measured values run ≈ 0.05n because the interleaved red
        # walk rescues some candidates before their stars complete.
        from repro.core.stars import cumulative_star_census

        n = 400
        g = random_connected_regular_graph(n, 3, rng_factory(11))
        walk = EdgeProcess(g, 0, rng=rng_factory(12))
        result = cumulative_star_census(walk)
        assert result.covered
        assert n / 40 <= result.count <= n / 6

    def test_even_degree_leaves_no_stars(self, rng_factory):
        # Observation 10 forecloses turn-aways on even-degree graphs: the
        # cumulative census stays empty.
        from repro.core.stars import cumulative_star_census

        g = random_connected_regular_graph(200, 4, rng_factory(15))
        walk = EdgeProcess(g, 0, rng=rng_factory(16))
        result = cumulative_star_census(walk)
        assert result.count == 0
