"""Tests for exploration profiles."""

import pytest

from repro.core.eprocess import EdgeProcess
from repro.errors import ReproError
from repro.graphs.generators import cycle_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.profiles import record_profile
from repro.walks.srw import SimpleRandomWalk


class TestRecordProfile:
    def test_cycle_deterministic_profile(self, rng):
        n = 20
        walk = EdgeProcess(cycle_graph(n), 0, rng=rng)
        profile = record_profile(walk)
        assert profile.vertex_cover_step == n - 1
        assert profile.points[0].step == 0
        assert profile.points[0].vertices_visited == 1
        assert profile.points[-1].vertices_visited == n

    def test_monotone_coverage(self, rng_factory):
        g = random_connected_regular_graph(60, 4, rng_factory(1))
        walk = EdgeProcess(g, 0, rng=rng_factory(2))
        profile = record_profile(walk)
        verts = [p.vertices_visited for p in profile.points]
        steps = [p.step for p in profile.points]
        assert verts == sorted(verts)
        assert steps == sorted(steps)

    def test_half_cover_step_sensible(self, rng_factory):
        g = random_connected_regular_graph(60, 4, rng_factory(3))
        walk = EdgeProcess(g, 0, rng=rng_factory(4))
        profile = record_profile(walk)
        assert profile.half_cover_step is not None
        assert profile.half_cover_step <= profile.vertex_cover_step

    def test_vertex_fractions(self, rng):
        n = 10
        walk = EdgeProcess(cycle_graph(n), 0, rng=rng)
        profile = record_profile(walk)
        fractions = profile.vertex_fractions(n)
        assert fractions[0] == pytest.approx(1 / n)
        assert fractions[-1] == pytest.approx(1.0)

    def test_tail_fraction_between_zero_and_one(self, rng_factory):
        g = random_connected_regular_graph(100, 3, rng_factory(5))
        walk = EdgeProcess(g, 0, rng=rng_factory(6))
        profile = record_profile(walk)
        assert 0.0 <= profile.tail_fraction(100) <= 1.0

    def test_tail_fraction_needs_cover(self, rng):
        walk = SimpleRandomWalk(cycle_graph(40), 0, rng=rng)
        profile = record_profile(walk, max_steps=5)
        assert profile.vertex_cover_step is None
        with pytest.raises(ReproError):
            profile.tail_fraction(40)

    def test_edge_mode_requires_tracking(self, rng):
        walk = SimpleRandomWalk(cycle_graph(6), 0, rng=rng)
        with pytest.raises(ReproError):
            record_profile(walk, until="edges")

    def test_edge_mode_runs_to_edge_cover(self, rng):
        walk = EdgeProcess(cycle_graph(6), 0, rng=rng)
        profile = record_profile(walk, until="edges")
        assert profile.points[-1].edges_visited == 6

    def test_fresh_walk_required(self, rng):
        walk = SimpleRandomWalk(cycle_graph(6), 0, rng=rng)
        walk.step()
        with pytest.raises(ReproError):
            record_profile(walk)

    def test_bad_until_rejected(self, rng):
        walk = SimpleRandomWalk(cycle_graph(6), 0, rng=rng)
        with pytest.raises(ReproError):
            record_profile(walk, until="faces")

    def test_no_duplicate_final_checkpoint(self, rng):
        # Every step of a small cover gets checkpointed, so the old code
        # appended the final snapshot twice; steps must be strictly unique.
        walk = EdgeProcess(cycle_graph(12), 0, rng=rng)
        profile = record_profile(walk)
        steps = [p.step for p in profile.points]
        assert len(steps) == len(set(steps))
        assert steps[-1] == profile.vertex_cover_step

    def test_landmarks_match_per_step_brute_force(self, rng_factory):
        # The landmark fields are exact step numbers, pinned bit-for-bit
        # against a twin walk scanned every single step.
        g = random_connected_regular_graph(100, 3, rng_factory(11))
        walk = SimpleRandomWalk(g, 0, rng=rng_factory(12))
        profile = record_profile(walk)
        twin = SimpleRandomWalk(g, 0, rng=rng_factory(12))
        near_target = g.n - max(1, g.n // 100)
        half = 0 if twin.num_visited_vertices * 2 >= g.n else None
        near = 0 if twin.num_visited_vertices >= near_target else None
        while not twin.vertices_covered:
            twin.step()
            if half is None and twin.num_visited_vertices * 2 >= g.n:
                half = twin.steps
            if near is None and twin.num_visited_vertices >= near_target:
                near = twin.steps
        assert profile.half_cover_step == half
        assert profile.near_cover_step == near
        assert profile.graph_n == g.n
        assert profile.tail_fraction(g.n) == pytest.approx(
            1.0 - near / profile.vertex_cover_step
        )

    def test_landmarks_not_snapped_to_checkpoints(self, rng_factory):
        # Checkpoints grow geometrically, so the first checkpoint at or
        # past a landmark overshoots it without bound; the recorded
        # landmark must be the exact step, which (deep in a long SRW run)
        # falls strictly between checkpoints.
        g = cycle_graph(120)
        walk = SimpleRandomWalk(g, 0, rng=rng_factory(21))
        profile = record_profile(walk, checkpoints=40)
        first_half_checkpoint = next(
            p.step for p in profile.points if p.vertices_visited * 2 >= g.n
        )
        assert profile.half_cover_step <= first_half_checkpoint
        assert profile.half_cover_step not in profile.steps()
        first_near_checkpoint = next(
            p.step
            for p in profile.points
            if p.vertices_visited >= g.n - max(1, g.n // 100)
        )
        assert profile.near_cover_step <= first_near_checkpoint
        # tail_fraction derives from the exact landmark, so it can only be
        # larger (the checkpointed estimate under-counted the tail).
        assert profile.tail_fraction(g.n) >= 1.0 - (
            first_near_checkpoint / profile.vertex_cover_step
        )

    def test_tail_fraction_rejects_foreign_n(self, rng):
        walk = EdgeProcess(cycle_graph(30), 0, rng=rng)
        profile = record_profile(walk)
        with pytest.raises(ReproError):
            profile.tail_fraction(40)

    def test_checkpoint_count_tracks_request_on_large_budgets(self, rng):
        # A budget-bound run (cover far beyond max_steps) must produce
        # roughly `checkpoints` points: growth^checkpoints = budget, so the
        # ladder reaches the budget in about that many rungs (plus the
        # short linear ramp), not the ~50% overshoot of the old exponent.
        checkpoints = 64
        walk = SimpleRandomWalk(cycle_graph(2000), 0, rng=rng)
        profile = record_profile(walk, checkpoints=checkpoints, max_steps=50_000)
        count = len(profile.points)
        assert 0.7 * checkpoints <= count <= 1.3 * checkpoints, count
