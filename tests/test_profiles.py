"""Tests for exploration profiles."""

import pytest

from repro.core.eprocess import EdgeProcess
from repro.errors import ReproError
from repro.graphs.generators import cycle_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.profiles import record_profile
from repro.walks.srw import SimpleRandomWalk


class TestRecordProfile:
    def test_cycle_deterministic_profile(self, rng):
        n = 20
        walk = EdgeProcess(cycle_graph(n), 0, rng=rng)
        profile = record_profile(walk)
        assert profile.vertex_cover_step == n - 1
        assert profile.points[0].step == 0
        assert profile.points[0].vertices_visited == 1
        assert profile.points[-1].vertices_visited == n

    def test_monotone_coverage(self, rng_factory):
        g = random_connected_regular_graph(60, 4, rng_factory(1))
        walk = EdgeProcess(g, 0, rng=rng_factory(2))
        profile = record_profile(walk)
        verts = [p.vertices_visited for p in profile.points]
        steps = [p.step for p in profile.points]
        assert verts == sorted(verts)
        assert steps == sorted(steps)

    def test_half_cover_step_sensible(self, rng_factory):
        g = random_connected_regular_graph(60, 4, rng_factory(3))
        walk = EdgeProcess(g, 0, rng=rng_factory(4))
        profile = record_profile(walk)
        assert profile.half_cover_step is not None
        assert profile.half_cover_step <= profile.vertex_cover_step

    def test_vertex_fractions(self, rng):
        n = 10
        walk = EdgeProcess(cycle_graph(n), 0, rng=rng)
        profile = record_profile(walk)
        fractions = profile.vertex_fractions(n)
        assert fractions[0] == pytest.approx(1 / n)
        assert fractions[-1] == pytest.approx(1.0)

    def test_tail_fraction_between_zero_and_one(self, rng_factory):
        g = random_connected_regular_graph(100, 3, rng_factory(5))
        walk = EdgeProcess(g, 0, rng=rng_factory(6))
        profile = record_profile(walk)
        assert 0.0 <= profile.tail_fraction(100) <= 1.0

    def test_tail_fraction_needs_cover(self, rng):
        walk = SimpleRandomWalk(cycle_graph(40), 0, rng=rng)
        profile = record_profile(walk, max_steps=5)
        assert profile.vertex_cover_step is None
        with pytest.raises(ReproError):
            profile.tail_fraction(40)

    def test_edge_mode_requires_tracking(self, rng):
        walk = SimpleRandomWalk(cycle_graph(6), 0, rng=rng)
        with pytest.raises(ReproError):
            record_profile(walk, until="edges")

    def test_edge_mode_runs_to_edge_cover(self, rng):
        walk = EdgeProcess(cycle_graph(6), 0, rng=rng)
        profile = record_profile(walk, until="edges")
        assert profile.points[-1].edges_visited == 6

    def test_fresh_walk_required(self, rng):
        walk = SimpleRandomWalk(cycle_graph(6), 0, rng=rng)
        walk.step()
        with pytest.raises(ReproError):
            record_profile(walk)

    def test_bad_until_rejected(self, rng):
        walk = SimpleRandomWalk(cycle_graph(6), 0, rng=rng)
        with pytest.raises(ReproError):
            record_profile(walk, until="faces")

    def test_no_duplicate_final_checkpoint(self, rng):
        # Every step of a small cover gets checkpointed, so the old code
        # appended the final snapshot twice; steps must be strictly unique.
        walk = EdgeProcess(cycle_graph(12), 0, rng=rng)
        profile = record_profile(walk)
        steps = [p.step for p in profile.points]
        assert len(steps) == len(set(steps))
        assert steps[-1] == profile.vertex_cover_step

    def test_checkpoint_count_tracks_request_on_large_budgets(self, rng):
        # A budget-bound run (cover far beyond max_steps) must produce
        # roughly `checkpoints` points: growth^checkpoints = budget, so the
        # ladder reaches the budget in about that many rungs (plus the
        # short linear ramp), not the ~50% overshoot of the old exponent.
        checkpoints = 64
        walk = SimpleRandomWalk(cycle_graph(2000), 0, rng=rng)
        profile = record_profile(walk, checkpoints=checkpoints, max_steps=50_000)
        count = len(profile.points)
        assert 0.7 * checkpoints <= count <= 1.3 * checkpoints, count
