"""Property-based tests on arbitrary (odd-degree allowed) simple graphs.

The E-process is *defined* on any connected graph (Figure 1 runs d = 3, 5,
7); only the theorems need even degrees.  These properties pin down what
survives without the parity assumption: step accounting (Observation 12),
the deterministic edge-cover floor ``C_E ≥ m``, and cover termination.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eprocess import EdgeProcess
from repro.core.phases import verify_observation_12
from repro.walks.greedy import GreedyRandomWalk
from tests.strategies import simple_connected_graphs


@settings(max_examples=50, deadline=None)
@given(
    graph=simple_connected_graphs(min_vertices=2),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_obs12_holds_without_even_degrees(graph, seed):
    rng = random.Random(seed)
    walk = EdgeProcess(graph, rng.randrange(graph.n), rng=rng)
    walk.run_until_vertex_cover(max_steps=500 * graph.n * graph.n + 1000)
    verify_observation_12(walk)


@settings(max_examples=50, deadline=None)
@given(
    graph=simple_connected_graphs(min_vertices=2),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_grw_edge_cover_floor(graph, seed):
    rng = random.Random(seed)
    walk = GreedyRandomWalk(graph, rng.randrange(graph.n), rng=rng)
    steps = walk.run_until_edge_cover(max_steps=500 * graph.n * graph.n + 1000)
    assert steps >= graph.m
    assert walk.blue_steps == graph.m  # every edge consumed exactly once blue


@settings(max_examples=50, deadline=None)
@given(
    graph=simple_connected_graphs(min_vertices=2),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_first_visit_times_consistent(graph, seed):
    rng = random.Random(seed)
    walk = EdgeProcess(graph, rng.randrange(graph.n), rng=rng)
    walk.run_until_vertex_cover(max_steps=500 * graph.n * graph.n + 1000)
    times = walk.first_visit_time
    assert times[walk.start] == 0
    assert all(0 <= t <= walk.steps for t in times)
    # cover step equals the latest first-visit
    assert max(times) == walk.steps or not walk.vertices_covered


@settings(max_examples=40, deadline=None)
@given(
    graph=simple_connected_graphs(min_vertices=3),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_edge_visit_times_are_distinct_blue_instants(graph, seed):
    # each edge is consumed by exactly one blue transition, so the first
    # edge-visit times are distinct and at most t
    rng = random.Random(seed)
    walk = EdgeProcess(graph, rng.randrange(graph.n), rng=rng)
    walk.run_until_edge_cover(max_steps=500 * graph.n * graph.n + 1000)
    times = walk.first_edge_visit_time
    assert len(set(times)) == graph.m
    assert all(1 <= t <= walk.steps for t in times)
