"""Tests for the paper's bound formulas (algebraic properties, constants)."""

import math

import pytest

from repro.core.bounds import (
    edge_cover_sandwich,
    eprocess_speedup,
    eq1_expander_vertex_cover_bound,
    eq4_blanket_edge_cover_bound,
    feige_lower_bound,
    grw_edge_cover_bound,
    lemma14_subgraph_count_bound,
    lemma15_tau_star,
    radzik_lower_bound,
    rotor_router_cover_bound,
    theorem1_vertex_cover_bound,
    theorem3_edge_cover_bound,
)
from repro.errors import ReproError


class TestLowerBounds:
    def test_radzik_value(self):
        n = 1000
        assert radzik_lower_bound(n) == pytest.approx((n / 4) * math.log(n / 2))

    def test_radzik_below_feige(self):
        # (n/4) ln(n/2) < n ln n for all n: Theorem 5 is the weaker constant.
        for n in (10, 100, 10_000):
            assert radzik_lower_bound(n) < feige_lower_bound(n)

    def test_degenerate_small_n(self):
        assert radzik_lower_bound(2) == 0.0
        assert feige_lower_bound(1) == 0.0

    def test_positive_input_required(self):
        with pytest.raises(ReproError):
            radzik_lower_bound(0)


class TestTheorem1:
    def test_reduces_to_eq1_at_unit_gap(self):
        n, ell = 5000, 8.0
        assert theorem1_vertex_cover_bound(n, ell, gap=1.0) == pytest.approx(
            eq1_expander_vertex_cover_bound(n, ell)
        )

    def test_monotone_decreasing_in_ell_and_gap(self):
        n = 5000
        assert theorem1_vertex_cover_bound(n, 4, 0.3) > theorem1_vertex_cover_bound(n, 8, 0.3)
        assert theorem1_vertex_cover_bound(n, 4, 0.1) > theorem1_vertex_cover_bound(n, 4, 0.3)

    def test_linear_regime_for_log_ell(self):
        # ell = log n makes the bound O(n): ratio to n stays bounded.
        for n in (1_000, 10_000, 100_000):
            bound = eq1_expander_vertex_cover_bound(n, math.log(n))
            assert bound <= 2.01 * n

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            theorem1_vertex_cover_bound(100, 0, 0.5)
        with pytest.raises(ReproError):
            theorem1_vertex_cover_bound(100, 5, 0)


class TestEdgeCoverBounds:
    def test_sandwich_ordering(self):
        low, high = edge_cover_sandwich(m=2000, cv_srw=9000.0)
        assert low == 2000
        assert high == 11000
        assert low <= high

    def test_sandwich_validation(self):
        with pytest.raises(ReproError):
            edge_cover_sandwich(0, 10.0)
        with pytest.raises(ReproError):
            edge_cover_sandwich(10, -1.0)

    def test_grw_bound_exceeds_m(self):
        assert grw_edge_cover_bound(m=3000, n=1000, gap=0.3) > 3000

    def test_eq4_scales_with_cv(self):
        assert eq4_blanket_edge_cover_bound(100, 500.0) == 600.0

    def test_theorem3_girth_helps(self):
        kwargs = dict(m=3000, n=1000, gap=0.3, max_degree=6)
        high_girth = theorem3_edge_cover_bound(girth_value=20.0, **kwargs)
        low_girth = theorem3_edge_cover_bound(girth_value=3.0, **kwargs)
        assert high_girth < low_girth

    def test_theorem3_gap_squared(self):
        a = theorem3_edge_cover_bound(1000, 500, 0.5, 10.0, 4)
        b = theorem3_edge_cover_bound(1000, 500, 0.25, 10.0, 4)
        # halving the gap quadruples the non-m term
        assert (b - 1000) == pytest.approx(4 * (a - 1000))


class TestAuxiliaryBounds:
    def test_lemma14(self):
        assert lemma14_subgraph_count_bound(3, 4) == 2.0**12
        with pytest.raises(ReproError):
            lemma14_subgraph_count_bound(0, 4)

    def test_lemma15_constant_degree_linear(self):
        # tau* = B*n*(1 + log n / (min(ell, log n) * gap)); with ell >= log n
        # and constant gap it is O(n).
        for n in (1_000, 10_000):
            m = 2 * n
            tau = lemma15_tau_star(m, n, 4, 4, ell=math.log(n), gap=0.3)
            assert tau <= m * (1 + 14 * 8 * (1 / (4 * 0.3)) + 1)

    def test_rotor_bound(self):
        assert rotor_router_cover_bound(10, 5) == 50.0

    def test_speedup_min_semantics(self):
        n = 10_000
        assert eprocess_speedup(n, 4.0) == 4.0
        assert eprocess_speedup(n, 1e9) == pytest.approx(math.log(n))
