"""Tests for result aggregation and serialization."""

import math

import pytest

from repro.errors import ReproError
from repro.sim.results import (
    Aggregate,
    Series,
    SweepPoint,
    aggregate,
    series_from_json,
    series_to_json,
    t_critical_975,
)


class TestAggregate:
    def test_basic_statistics(self):
        stats = aggregate([2.0, 4.0, 6.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(4.0)
        assert stats.std == pytest.approx(2.0)
        assert stats.sem == pytest.approx(2.0 / math.sqrt(3))
        # 3 samples -> 2 degrees of freedom -> t = 4.303, not z = 1.96
        assert stats.ci95 == pytest.approx(4.303 * stats.sem)
        assert (stats.minimum, stats.maximum) == (2.0, 6.0)

    def test_paper_five_trials_use_student_t(self):
        stats = aggregate([10.0, 12.0, 11.0, 14.0, 13.0])
        assert stats.ci95 == pytest.approx(2.776 * stats.sem)
        assert stats.ci95 > 1.96 * stats.sem  # normal approx understates

    def test_single_sample(self):
        stats = aggregate([5.0])
        assert stats.std == 0.0
        assert stats.ci95 == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            aggregate([])

    def test_scaled(self):
        stats = aggregate([10.0, 20.0]).scaled(0.1)
        assert stats.mean == pytest.approx(1.5)
        assert stats.minimum == pytest.approx(1.0)

    def test_scale_validation(self):
        with pytest.raises(ReproError):
            aggregate([1.0]).scaled(0.0)


class TestTCritical:
    def test_table_values(self):
        assert t_critical_975(1) == pytest.approx(12.706)
        assert t_critical_975(4) == pytest.approx(2.776)
        assert t_critical_975(30) == pytest.approx(2.042)

    def test_large_df_approaches_normal(self):
        assert t_critical_975(40) == pytest.approx(2.021, abs=2e-3)
        assert t_critical_975(60) == pytest.approx(2.000, abs=2e-3)
        assert t_critical_975(120) == pytest.approx(1.980, abs=2e-3)
        assert t_critical_975(10**6) == pytest.approx(1.96, abs=1e-4)

    def test_monotone_decreasing(self):
        values = [t_critical_975(df) for df in range(1, 200)]
        assert values == sorted(values, reverse=True)

    def test_invalid_df(self):
        with pytest.raises(ReproError):
            t_critical_975(0)


class TestSeries:
    def _series(self):
        return Series(
            label="E d=4",
            points=[
                SweepPoint(x=100.0, stats=aggregate([1.0, 2.0]), extras={"gap": 0.3}),
                SweepPoint(x=200.0, stats=aggregate([3.0])),
            ],
        )

    def test_accessors(self):
        s = self._series()
        assert s.xs() == [100.0, 200.0]
        assert s.means() == [pytest.approx(1.5), pytest.approx(3.0)]

    def test_json_round_trip(self):
        original = [self._series()]
        payload = series_to_json(original)
        restored = series_from_json(payload)
        assert restored == original

    def test_json_is_stable_text(self):
        payload = series_to_json([self._series()])
        assert payload == series_to_json(series_from_json(payload))
        assert '"E d=4"' in payload
