"""Tests for contraction, subdivision and subgraphs (the proofs' transforms)."""

import pytest

from repro.errors import GraphError
from repro.graphs.generators import complete_graph, cycle_graph, petersen_graph
from repro.graphs.graph import Graph
from repro.graphs.properties import is_connected
from repro.graphs.transform import contract, disjoint_union, induced_subgraph, subdivide
from repro.spectral.eigen import lambda_2
from repro.spectral.hitting import hitting_time, hitting_time_to_set


class TestContract:
    def test_preserves_edge_count_and_set_degree(self):
        g = petersen_graph()
        S = {0, 1, 2}
        result = contract(g, S)
        assert result.graph.m == g.m
        d_S = sum(g.degree(v) for v in S)
        assert result.graph.degree(result.gamma) == d_S

    def test_internal_edges_become_loops(self):
        triangle = cycle_graph(3)
        result = contract(triangle, {0, 1})
        # edge (0,1) becomes a loop at gamma; two edges to vertex 2 remain
        assert result.graph.has_loops()
        assert result.graph.degree(result.gamma) == 4

    def test_parallel_edges_retained(self):
        g = cycle_graph(4)
        result = contract(g, {0, 2})  # opposite vertices: two parallel pairs
        gamma = result.gamma
        assert result.graph.m == 4
        assert result.graph.has_parallel_edges()
        assert result.graph.degree(gamma) == 4

    def test_vertex_map_consistency(self):
        g = cycle_graph(5)
        result = contract(g, {1, 3})
        assert result.vertex_map[1] == result.vertex_map[3] == result.gamma
        mapped = {result.vertex_map[v] for v in range(5)}
        assert mapped == set(range(result.graph.n))

    def test_untouched_degrees_preserved(self):
        g = petersen_graph()
        result = contract(g, {0, 5})
        for v in range(10):
            if v in (0, 5):
                continue
            assert result.graph.degree(result.vertex_map[v]) == g.degree(v)

    def test_empty_set_rejected(self):
        with pytest.raises(GraphError):
            contract(cycle_graph(3), [])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            contract(cycle_graph(3), [7])

    def test_hitting_time_correspondence(self):
        # E_u H_S in G equals E_u H_gamma in Gamma: the contraction coupling
        # of Section 2.2, checked exactly on a small graph.
        g = petersen_graph()
        S = {3, 7}
        result = contract(g, S)
        for u in (0, 1, 9):
            direct = hitting_time_to_set(g, u, S)
            via_gamma = hitting_time(result.graph, result.vertex_map[u], result.gamma)
            assert direct == pytest.approx(via_gamma, rel=1e-9)

    def test_contraction_increases_gap(self):
        # eq. (16): 1 - lambda_max(G) <= 1 - lambda_max(Gamma); checked via
        # lambda_2 on graphs whose lambda_max = lambda_2.
        for g, S in [
            (petersen_graph(), {0, 1}),
            (complete_graph(6), {0, 1, 2}),
            (cycle_graph(9), {0, 4}),
        ]:
            result = contract(g, S)
            assert lambda_2(result.graph) <= lambda_2(g) + 1e-9


class TestSubdivide:
    def test_counts(self):
        g = cycle_graph(4)
        result = subdivide(g, [0, 2])
        assert result.graph.n == 6
        assert result.graph.m == 6
        assert set(result.midpoints) == {0, 2}

    def test_midpoints_have_degree_two(self):
        g = complete_graph(4)
        result = subdivide(g, [1])
        z = result.midpoints[1]
        assert result.graph.degree(z) == 2

    def test_even_degrees_preserved(self):
        g = cycle_graph(6)
        result = subdivide(g, range(g.m))
        assert result.graph.has_even_degrees()

    def test_original_degrees_unchanged(self):
        g = petersen_graph()
        result = subdivide(g, [0, 7, 14])
        for v in range(g.n):
            assert result.graph.degree(v) == g.degree(v)

    def test_loop_subdivides_to_parallel_pair(self):
        g = Graph(1, [(0, 0)])
        result = subdivide(g, [0])
        assert result.graph.n == 2
        assert result.graph.m == 2
        assert result.graph.has_parallel_edges()
        assert result.graph.degree(0) == 2
        assert result.graph.has_even_degrees()

    def test_connectivity_preserved(self):
        g = petersen_graph()
        result = subdivide(g, range(0, g.m, 2))
        assert is_connected(result.graph)

    def test_bad_edge_rejected(self):
        with pytest.raises(GraphError):
            subdivide(cycle_graph(3), [10])


class TestInducedSubgraph:
    def test_triangle_in_k5(self):
        g = complete_graph(5)
        result = induced_subgraph(g, [0, 1, 2])
        assert result.graph.n == 3
        assert result.graph.m == 3
        assert result.vertex_map == (0, 1, 2)

    def test_edge_map_points_back(self):
        g = cycle_graph(5)
        result = induced_subgraph(g, [0, 1, 2])
        for new_eid, old_eid in enumerate(result.edge_map):
            u, v = result.graph.endpoints(new_eid)
            ou, ov = g.endpoints(old_eid)
            assert {result.vertex_map[u], result.vertex_map[v]} == {ou, ov}

    def test_bad_vertex_rejected(self):
        with pytest.raises(GraphError):
            induced_subgraph(cycle_graph(3), [5])


class TestDisjointUnion:
    def test_counts_and_shift(self):
        a, b = cycle_graph(3), cycle_graph(4)
        u = disjoint_union(a, b)
        assert u.n == 7
        assert u.m == 7
        assert not is_connected(u)
        assert u.has_edge(3, 4)


class TestDoubleEdges:
    def test_degrees_double_and_parity_fixes(self):
        from repro.graphs.transform import double_edges

        g = petersen_graph()  # 3-regular, odd
        d = double_edges(g)
        assert d.n == g.n
        assert d.m == 2 * g.m
        assert d.regularity() == 6
        assert d.has_even_degrees()
        assert d.has_parallel_edges()

    def test_edge_ids_twin_layout(self):
        from repro.graphs.transform import double_edges

        g = cycle_graph(5)
        d = double_edges(g)
        for e in range(g.m):
            assert d.endpoints(e) == d.endpoints(g.m + e)

    def test_goodness_collapses_to_doubled_star(self):
        # the ablation's mechanism: a degree-2k vertex's doubled star is an
        # even subgraph on k+1 vertices, so ℓ(v) = deg_G(v) + 1 at best
        from repro.core.goodness import ell_value_at
        from repro.graphs.transform import double_edges

        d = double_edges(complete_graph(4))
        for v in range(4):
            assert ell_value_at(d, v) == 4

    def test_eprocess_accepts_doubled_odd_graph(self, rng):
        from repro.core.eprocess import EdgeProcess
        from repro.graphs.transform import double_edges

        d = double_edges(petersen_graph())
        walk = EdgeProcess(d, 0, rng=rng, require_even_degrees=True)
        walk.run_until_vertex_cover()
        assert walk.vertices_covered
