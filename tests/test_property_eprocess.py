"""Property-based tests (hypothesis) for the E-process invariants.

These run the paper's Observations on arbitrary connected even-degree
multigraphs with arbitrary built-in rules — the strongest form of the
"independent of rule A" claim that a test suite can check.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import blue_components, verify_observation_11
from repro.core.eprocess import EdgeProcess
from repro.core.phases import verify_observation_10, verify_observation_12
from repro.core.rules import ALL_RULE_FACTORIES
from tests.strategies import connected_even_multigraphs

RULE_NAMES = sorted(ALL_RULE_FACTORIES)


def _walk(graph, seed, rule_name):
    rng = random.Random(seed)
    rule = ALL_RULE_FACTORIES[rule_name]()
    return EdgeProcess(graph, rng.randrange(graph.n), rng=rng, rule=rule)


@settings(max_examples=60, deadline=None)
@given(
    graph=connected_even_multigraphs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rule_name=st.sampled_from(RULE_NAMES),
)
def test_observation_10_any_rule(graph, seed, rule_name):
    walk = _walk(graph, seed, rule_name)
    walk.run_until_edge_cover(max_steps=200 * graph.m * graph.n + 1000)
    verify_observation_10(walk)


@settings(max_examples=60, deadline=None)
@given(
    graph=connected_even_multigraphs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rule_name=st.sampled_from(RULE_NAMES),
    steps=st.integers(min_value=0, max_value=200),
)
def test_observation_12_any_prefix(graph, seed, rule_name, steps):
    walk = _walk(graph, seed, rule_name)
    for _ in range(steps):
        walk.step()
    verify_observation_12(walk)
    assert walk.red_steps <= walk.steps <= walk.red_steps + graph.m


@settings(max_examples=50, deadline=None)
@given(
    graph=connected_even_multigraphs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_observation_11_at_red_entries(graph, seed):
    walk = _walk(graph, seed, "uniform")
    budget = 50 * graph.m * graph.n + 500
    while not walk.edges_covered and walk.steps < budget:
        walk.step()
        if walk.in_red_phase:
            verify_observation_11(walk)
            break
    # even with no red entry (everything covered blue) obs 11 holds trivially
    if walk.edges_covered:
        verify_observation_11(walk)


@settings(max_examples=50, deadline=None)
@given(
    graph=connected_even_multigraphs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_blue_steps_bounded_by_m_and_cover_reached(graph, seed):
    walk = _walk(graph, seed, "uniform")
    steps = walk.run_until_vertex_cover(max_steps=200 * graph.m * graph.n + 1000)
    assert walk.blue_steps <= graph.m
    assert steps >= graph.n - 1


@settings(max_examples=40, deadline=None)
@given(
    graph=connected_even_multigraphs(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_blue_component_degrees_even_mid_run(graph, seed):
    walk = _walk(graph, seed, "uniform")
    walk.run_until_edge_cover(max_steps=200 * graph.m * graph.n + 1000)
    # after full cover there are no blue components at all
    assert blue_components(walk) == []
