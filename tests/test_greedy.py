"""Tests for the Greedy Random Walk wrapper (eq. 2 of the paper)."""

import math

from repro.core.bounds import grw_edge_cover_bound
from repro.core.eprocess import EdgeProcess
from repro.core.rules import UniformEdgeRule
from repro.graphs.generators import complete_graph, hypercube_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.spectral.eigen import spectral_gap
from repro.walks.greedy import GreedyRandomWalk, greedy_random_walk


class TestIdentity:
    def test_is_an_eprocess_with_uniform_rule(self, rng):
        walk = GreedyRandomWalk(complete_graph(4), 0, rng=rng)
        assert isinstance(walk, EdgeProcess)
        assert isinstance(walk.rule, UniformEdgeRule)

    def test_odd_degrees_allowed(self, rng):
        # [13] covers all r, not just even
        walk = GreedyRandomWalk(complete_graph(4), 0, rng=rng)
        walk.run_until_edge_cover()
        assert walk.edges_covered

    def test_factory(self, rng):
        walk = greedy_random_walk(complete_graph(4), 1, rng=rng)
        assert walk.start == 1


class TestEq2:
    def test_edge_cover_within_eq2_bound(self, rng_factory):
        # Eq (2): C_E(GRW) = m + O(n log n / gap); check with constant 6
        # against the measured mean on random 4-regular graphs.
        g = random_connected_regular_graph(80, 4, rng_factory(21))
        gap = spectral_gap(g)
        bound = grw_edge_cover_bound(g.m, g.n, gap, constant=6.0)
        covers = []
        for i in range(10):
            walk = GreedyRandomWalk(g, 0, rng=rng_factory(300 + i))
            covers.append(walk.run_until_edge_cover())
        assert sum(covers) / len(covers) <= bound

    def test_hypercube_linear_in_edges_plus_nlogn(self, rng_factory):
        # the paper's H_r example: C_E(E-process) = Theta(n log n)
        g = hypercube_graph(6)  # n=64, m=192
        covers = []
        for i in range(5):
            walk = GreedyRandomWalk(g, 0, rng=rng_factory(400 + i))
            covers.append(walk.run_until_edge_cover())
        mean = sum(covers) / len(covers)
        n = g.n
        assert mean <= 6 * (g.m + n * math.log(n))
