"""Tests for the deterministic graph families."""

import math

import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    barbell_graph,
    bowtie_graph,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    double_cycle,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    petersen_graph,
    star_graph,
    theta_graph,
    torus_grid,
)
from repro.graphs.properties import diameter, girth, is_bipartite, is_connected


class TestCycleAndPath:
    def test_cycle_basics(self):
        g = cycle_graph(7)
        assert (g.n, g.m) == (7, 7)
        assert g.is_regular() and g.regularity() == 2
        assert girth(g) == 7
        assert g.has_even_degrees()

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert (g.n, g.m) == (5, 4)
        assert g.degree(0) == g.degree(4) == 1
        assert not g.has_even_degrees()

    def test_path_single_vertex(self):
        g = path_graph(1)
        assert (g.n, g.m) == (1, 0)


class TestComplete:
    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15
        assert g.regularity() == 5
        assert girth(g) == 3
        assert diameter(g) == 1

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert (g.n, g.m) == (5, 6)
        assert is_bipartite(g)
        assert girth(g) == 4

    def test_complete_bipartite_rejects_empty_part(self):
        with pytest.raises(GraphError):
            complete_bipartite_graph(0, 3)


class TestHypercube:
    def test_h4(self):
        g = hypercube_graph(4)
        assert g.n == 16
        assert g.regularity() == 4
        assert g.has_even_degrees()
        assert girth(g) == 4
        assert is_bipartite(g)
        assert diameter(g) == 4

    def test_h1_is_edge(self):
        g = hypercube_graph(1)
        assert (g.n, g.m) == (2, 1)

    def test_invalid(self):
        with pytest.raises(GraphError):
            hypercube_graph(0)


class TestTorus:
    def test_regular_even(self):
        g = torus_grid(4, 5)
        assert g.n == 20
        assert g.regularity() == 4
        assert g.has_even_degrees()
        assert is_connected(g)

    def test_girth_unit_squares(self):
        assert girth(torus_grid(5, 5)) == 4

    def test_girth_wraps_at_three(self):
        assert girth(torus_grid(3, 5)) == 3

    def test_too_small(self):
        with pytest.raises(GraphError):
            torus_grid(2, 5)


class TestCirculant:
    def test_even_degree(self):
        g = circulant_graph(11, [1, 3])
        assert g.regularity() == 4
        assert g.has_even_degrees()
        assert is_connected(g)

    def test_offset_zero_rejected(self):
        with pytest.raises(GraphError):
            circulant_graph(10, [0])

    def test_half_offset_rejected(self):
        with pytest.raises(GraphError):
            circulant_graph(10, [5])

    def test_duplicate_offset_rejected(self):
        with pytest.raises(GraphError):
            circulant_graph(10, [3, 7])  # 7 ≡ -3 (mod 10)


class TestNamedFixtures:
    def test_petersen(self):
        g = petersen_graph()
        assert (g.n, g.m) == (10, 15)
        assert g.regularity() == 3
        assert girth(g) == 5
        assert diameter(g) == 2

    def test_bowtie(self):
        g = bowtie_graph()
        assert (g.n, g.m) == (5, 6)
        assert g.degree(0) == 4
        assert g.has_even_degrees()
        assert girth(g) == 3

    def test_double_cycle_multigraph(self):
        g = double_cycle(5)
        assert g.regularity() == 4
        assert g.has_parallel_edges()
        assert girth(g) == 2
        assert g.has_even_degrees()

    def test_theta_girth(self):
        g = theta_graph(2, 3, 4)
        assert girth(g) == 5  # two shortest arms
        assert g.degree(0) == g.degree(1) == 3

    def test_theta_rejects_double_parallel(self):
        with pytest.raises(GraphError):
            theta_graph(1, 1, 3)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert is_bipartite(g)
        assert math.isinf(girth(g))

    def test_barbell(self):
        g = barbell_graph(4, 3)
        assert is_connected(g)
        assert g.m == 2 * 6 + 3
        assert girth(g) == 3

    def test_lollipop(self):
        g = lollipop_graph(4, 3)
        assert (g.n, g.m) == (7, 9)
        assert is_connected(g)
        assert g.degree(6) == 1
