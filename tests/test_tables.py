"""Tests for the ASCII table renderers."""

import pytest

from repro.errors import ReproError
from repro.sim.results import Series, SweepPoint, aggregate
from repro.sim.tables import format_kv_block, format_series_table, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["n", "cover"], [[100, 1.5], [2000, 22.25]])
        lines = out.splitlines()
        assert lines[0].split() == ["n", "cover"]
        assert "2000" in lines[3]
        assert "22.250" in lines[3]

    def test_title_underlined(self):
        out = format_table(["a"], [[1]], title="Figure 1")
        lines = out.splitlines()
        assert lines[0] == "Figure 1"
        assert lines[1] == "=" * len("Figure 1")

    def test_float_digits(self):
        out = format_table(["x"], [[1.23456]], float_digits=1)
        assert "1.2" in out
        assert "1.23" not in out

    def test_row_length_mismatch(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [[1]])

    def test_headers_required(self):
        with pytest.raises(ReproError):
            format_table([], [])

    def test_text_columns_left_aligned(self):
        out = format_table(["name", "v"], [["x", 1], ["longer", 2]])
        assert "x     " in out.splitlines()[2]

    def test_bool_cells_are_text_not_numeric(self):
        # bool is an int subclass, but True/False are labels: they align
        # left with the other text, never right like numbers.
        out = format_table(["flag", "n"], [[True, 1], [False, 22]])
        lines = out.splitlines()
        assert lines[2].startswith("True ")
        assert lines[3].startswith("False")
        # the numeric column still right-aligns
        assert lines[2].endswith(" 1")
        assert lines[3].endswith("22")

    def test_mixed_int_and_str_column_aligns_per_cell(self):
        # One "n/a" must not flip the whole column to left-aligned text:
        # numbers keep right-aligning, markers left-align.
        out = format_table(["x", "tag"], [[1234, "a"], ["n/a", "b"]])
        lines = out.splitlines()
        assert lines[2] == "1234  a"
        assert lines[3] == "n/a   b"

    def test_mixed_column_header_left_aligned(self):
        # Headers (and their dashes) right-align only over all-numeric
        # columns; a mixed column reads as text at the top.
        out = format_table(["value", "n"], [[1, 2], ["?", 3]])
        header, dashes = out.splitlines()[:2]
        assert header.startswith("value")
        assert dashes.startswith("-----")
        pure = format_table(["v", "n"], [[1, 2], [10, 3]])
        assert pure.splitlines()[0].endswith("n")

    def test_all_numeric_column_unchanged(self):
        out = format_table(["n"], [[5], [500]])
        lines = out.splitlines()
        assert lines[2] == "  5"
        assert lines[3] == "500"


class TestSeriesTable:
    def _mk(self, label, values):
        return Series(
            label=label,
            points=[SweepPoint(x=float(x), stats=aggregate([v])) for x, v in values],
        )

    def test_two_series_share_grid(self):
        a = self._mk("E d=4", [(100, 2.0), (200, 2.1)])
        b = self._mk("E d=3", [(100, 5.0), (200, 6.5)])
        out = format_series_table([a, b], x_header="n")
        header = out.splitlines()[0]
        assert "E d=4" in header and "E d=3" in header
        assert "100" in out and "6.500" in out

    def test_mismatched_grids_rejected(self):
        a = self._mk("A", [(100, 1.0)])
        b = self._mk("B", [(200, 1.0)])
        with pytest.raises(ReproError):
            format_series_table([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            format_series_table([])


class TestKvBlock:
    def test_aligned_pairs(self):
        out = format_kv_block("summary", [["n", 100], ["gap", 0.25]])
        lines = out.splitlines()
        assert lines[0] == "summary"
        assert lines[2].startswith("n  ")
        assert "0.250" in lines[3]
