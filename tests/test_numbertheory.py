"""Tests for the number theory kit behind the LPS construction."""

import pytest

from repro.errors import GenerationError
from repro.graphs.numbertheory import (
    four_square_representations,
    is_prime,
    legendre_symbol,
    mod_inverse,
    next_prime,
    primes_in_range,
    sqrt_mod_prime,
)


class TestPrimality:
    def test_small_primes(self):
        known = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
        for n in range(50):
            assert is_prime(n) == (n in known)

    def test_large_prime_and_composite(self):
        assert is_prime(104729)  # 10000th prime
        assert not is_prime(104729 * 104723)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(13) == 17
        assert next_prime(14) == 17

    def test_primes_in_range(self):
        assert primes_in_range(10, 30) == [11, 13, 17, 19, 23, 29]


class TestLegendre:
    def test_against_brute_force(self):
        for p in (5, 13, 17, 29):
            residues = {(x * x) % p for x in range(1, p)}
            for a in range(1, p):
                expected = 1 if a in residues else -1
                assert legendre_symbol(a, p) == expected

    def test_zero(self):
        assert legendre_symbol(13, 13) == 0

    def test_non_prime_rejected(self):
        with pytest.raises(GenerationError):
            legendre_symbol(2, 15)


class TestSqrtMod:
    @pytest.mark.parametrize("p", [5, 13, 17, 29, 101, 10007])
    def test_roots_square_back(self, p):
        residues = sorted({(x * x) % p for x in range(1, p)})[:20]
        for a in residues:
            root = sqrt_mod_prime(a, p)
            assert (root * root) % p == a % p

    def test_minus_one_has_root_iff_1_mod_4(self):
        root = sqrt_mod_prime(12, 13)  # -1 mod 13
        assert (root * root) % 13 == 12
        with pytest.raises(GenerationError):
            sqrt_mod_prime(6, 7)  # 6 is a non-residue mod 7

    def test_zero(self):
        assert sqrt_mod_prime(0, 13) == 0


class TestModInverse:
    def test_inverse(self):
        for p in (5, 13, 101):
            for a in range(1, p):
                assert (a * mod_inverse(a, p)) % p == 1

    def test_zero_rejected(self):
        with pytest.raises(GenerationError):
            mod_inverse(0, 13)


class TestFourSquares:
    @pytest.mark.parametrize("p", [5, 13, 17, 29])
    def test_exactly_p_plus_one_solutions(self, p):
        sols = four_square_representations(p)
        assert len(sols) == p + 1
        for a0, a1, a2, a3 in sols:
            assert a0 > 0 and a0 % 2 == 1
            assert a1 % 2 == a2 % 2 == a3 % 2 == 0
            assert a0 * a0 + a1 * a1 + a2 * a2 + a3 * a3 == p

    def test_wrong_residue_class_rejected(self):
        with pytest.raises(GenerationError):
            four_square_representations(7)  # 7 ≡ 3 (mod 4)

    def test_solutions_closed_under_quaternion_conjugation(self):
        sols = set(four_square_representations(13))
        for a0, a1, a2, a3 in sols:
            assert (a0, -a1, -a2, -a3) in sols
