"""Tests for the mixing machinery (eq. 5, Lemmas 6-8, Cor. 9, Lemma 13)."""

import math

import pytest

from repro.errors import SpectralError
from repro.graphs.generators import complete_graph, cycle_graph, petersen_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.graphs.transform import contract
from repro.spectral.eigen import lambda_max, spectral_gap
from repro.spectral.hitting import hitting_time_matrix
from repro.spectral.matrices import stationary_distribution
from repro.spectral.mixing import (
    convergence_profile,
    epi_hitting_bound,
    epi_hitting_exact,
    epi_hitting_set_exact,
    lemma13_min_time,
    lemma13_tail_bound,
    mixing_time_bound,
    no_visit_tail_bound,
    pointwise_convergence_bound,
    set_hitting_bound,
    zvv_exact,
)


class TestEq5:
    def test_bound_dominates_true_deviation(self):
        g = petersen_graph()
        lam = lambda_max(g)
        pi = stationary_distribution(g)
        for t in (1, 3, 7, 15):
            true_dev = convergence_profile(g, t)
            worst_bound = max(
                pointwise_convergence_bound(pi[x], pi[u], lam, t)
                for u in range(g.n)
                for x in range(g.n)
            )
            assert true_dev <= worst_bound + 1e-12

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(SpectralError):
            pointwise_convergence_bound(0.0, 0.5, 0.5, 3)


class TestZvvAndEpiHitting:
    def test_eq6_identity(self):
        # E_pi(H_v) = Z_vv / pi_v must equal sum_u pi_u E_u T_v.
        g = petersen_graph()
        H = hitting_time_matrix(g)
        pi = stationary_distribution(g)
        for v in (0, 4, 9):
            direct = float(pi @ H[:, v])
            assert epi_hitting_exact(g, v) == pytest.approx(direct, rel=1e-9)

    def test_zvv_positive_on_connected_graphs(self):
        g = cycle_graph(7)
        for v in range(g.n):
            assert zvv_exact(g, v) > 0

    def test_lemma6_bound_dominates_exact(self):
        # Lemma 6 needs lambda_max < 1; use non-bipartite fixtures.
        for g in (petersen_graph(), complete_graph(6), cycle_graph(9)):
            gap = spectral_gap(g)
            pi = stationary_distribution(g)
            for v in range(g.n):
                assert epi_hitting_exact(g, v) <= epi_hitting_bound(pi[v], gap) + 1e-9

    def test_lemma6_rejects_zero_gap(self):
        with pytest.raises(SpectralError):
            epi_hitting_bound(0.1, 0.0)


class TestLemma7:
    def test_mixing_time_achieves_pointwise_accuracy(self):
        g = petersen_graph()
        gap = spectral_gap(g)
        T = math.ceil(mixing_time_bound(g.n, gap))
        assert convergence_profile(g, T) <= g.n ** -3

    def test_k_below_six_rejected(self):
        with pytest.raises(SpectralError):
            mixing_time_bound(100, 0.5, big_k=2.0)

    def test_monotone_in_gap(self):
        assert mixing_time_bound(100, 0.5) < mixing_time_bound(100, 0.1)


class TestLemma8:
    def test_tail_decays(self):
        bound1 = no_visit_tail_bound(100.0, 10.0, 20.0)
        bound2 = no_visit_tail_bound(400.0, 10.0, 20.0)
        assert bound2 < bound1 <= 1.0

    def test_floor_semantics(self):
        # below one interval the bound is trivial (e^0 = 1)
        assert no_visit_tail_bound(5.0, 10.0, 20.0) == 1.0

    def test_empirically_dominates(self, rng_factory):
        # Pr(v unvisited at t) measured by simulation on the Petersen graph
        # must stay below Lemma 8's bound.
        from repro.walks.srw import SimpleRandomWalk

        g = petersen_graph()
        gap = spectral_gap(g)
        T = mixing_time_bound(g.n, gap)
        target = 7
        epi = epi_hitting_exact(g, target)
        t = 200
        bound = no_visit_tail_bound(t, T, epi)
        rng = rng_factory(8)
        trials = 300
        misses = 0
        for _ in range(trials):
            walk = SimpleRandomWalk(g, 0, rng=rng)
            walk.run(t)
            if not walk.visited_vertices[target]:
                misses += 1
        assert misses / trials <= bound + 0.05


class TestCorollary9:
    def test_set_bound_dominates_exact(self):
        g = petersen_graph()
        gap = spectral_gap(g)
        for S in ({0}, {0, 1}, {2, 5, 8}):
            d_s = sum(g.degree(v) for v in S)
            exact = epi_hitting_set_exact(g, S)
            assert exact <= set_hitting_bound(g.m, d_s, gap) + 1e-9

    def test_contraction_gap_inequality_feeds_bound(self):
        # The bound holds with the *original* graph's gap because
        # contraction only increases the gap (eq. 16).
        g = petersen_graph()
        S = {0, 1, 2}
        gamma_graph = contract(g, S).graph
        assert spectral_gap(gamma_graph, lazy=True) >= spectral_gap(g, lazy=True) - 1e-9


class TestLemma13:
    def test_preconditions_enforced(self):
        with pytest.raises(SpectralError):
            lemma13_tail_bound(t=10.0, m=100, d_s=90.0, gap=0.5, n=50)  # d(S) too big
        with pytest.raises(SpectralError):
            lemma13_tail_bound(t=1.0, m=100, d_s=2.0, gap=0.5, n=50)  # t too small

    def test_valid_bound_below_one(self):
        m, d_s, gap, n = 2000, 4.0, 0.3, 1000
        t = lemma13_min_time(m, d_s, gap) * 2
        bound = lemma13_tail_bound(t, m, d_s, gap, n)
        assert 0 < bound < 1

    def test_empirical_set_avoidance(self, rng_factory):
        # measured Pr(S unvisited at t) <= Lemma 13 bound on a random
        # 4-regular graph (uses the real spectral gap).
        from repro.walks.srw import SimpleRandomWalk

        g = random_connected_regular_graph(120, 4, rng_factory(11))
        gap = spectral_gap(g)
        S = {0}
        d_s = 4.0
        t = int(lemma13_min_time(g.m, d_s, gap)) + 1
        bound = lemma13_tail_bound(t, g.m, d_s, gap, g.n)
        rng = rng_factory(12)
        trials = 120
        misses = 0
        for _ in range(trials):
            start = rng.randrange(1, g.n)
            walk = SimpleRandomWalk(g, start, rng=rng)
            walk.run(t)
            if not walk.visited_vertices[0]:
                misses += 1
        assert misses / trials <= bound + 0.05
