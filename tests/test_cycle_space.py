"""Tests for the GF(2) cycle space and minimum even subgraphs."""

import pytest

from repro.errors import GoodnessError
from repro.graphs.cycle_space import (
    contains_all_incident,
    cycle_space_basis,
    cycle_space_dimension,
    edge_mask,
    is_even_edge_set,
    mask_edges,
    minimum_even_subgraph,
    vertex_support,
)
from repro.graphs.generators import (
    bowtie_graph,
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    theta_graph,
)
from repro.graphs.graph import Graph


class TestMaskHelpers:
    def test_round_trip(self):
        mask = edge_mask([0, 3, 5])
        assert mask == 0b101001
        assert mask_edges(mask) == [0, 3, 5]

    def test_vertex_support(self):
        g = path_graph(4)
        assert vertex_support(g, edge_mask([0])) == {0, 1}
        assert vertex_support(g, edge_mask([0, 2])) == {0, 1, 2, 3}

    def test_is_even_edge_set(self):
        g = cycle_graph(5)
        assert is_even_edge_set(g, edge_mask(range(5)))
        assert not is_even_edge_set(g, edge_mask([0]))
        assert is_even_edge_set(g, 0)

    def test_loops_never_break_parity(self):
        g = Graph(2, [(0, 1), (0, 0)])
        assert is_even_edge_set(g, edge_mask([1]))


class TestBasis:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(6), complete_graph(5), petersen_graph(), bowtie_graph(), hypercube_graph(3)],
    )
    def test_dimension_formula(self, graph):
        basis = cycle_space_basis(graph)
        assert len(basis) == cycle_space_dimension(graph)
        assert len(basis) == graph.m - graph.n + 1  # connected

    def test_basis_vectors_are_even(self):
        g = petersen_graph()
        for vec in cycle_space_basis(g):
            assert is_even_edge_set(g, vec)

    def test_forest_empty_basis(self):
        assert cycle_space_basis(path_graph(5)) == []

    def test_loop_is_basis_element(self):
        g = Graph(2, [(0, 1), (0, 0)])
        basis = cycle_space_basis(g)
        assert len(basis) == 1
        assert mask_edges(basis[0]) == [1]

    def test_parallel_pair_basis(self):
        g = Graph(2, [(0, 1), (0, 1)])
        basis = cycle_space_basis(g)
        assert len(basis) == 1
        assert mask_edges(basis[0]) == [0, 1]


class TestMinimumEvenSubgraph:
    def test_cycle_needs_whole_cycle(self):
        g = cycle_graph(7)
        order, mask = minimum_even_subgraph(g, 0)
        assert order == 7
        assert mask == edge_mask(range(7))

    def test_k5_needs_five(self):
        # At a degree-4 vertex of K5 the minimum is two edge-disjoint
        # triangles through it: 5 vertices.
        order, mask = minimum_even_subgraph(complete_graph(5), 0)
        assert order == 5
        assert is_even_edge_set(complete_graph(5), mask)

    def test_bowtie_center_vs_arm(self):
        g = bowtie_graph()
        order_center, mask = minimum_even_subgraph(g, 0)
        assert order_center == 5
        assert contains_all_incident(g, mask, 0)
        order_arm, _ = minimum_even_subgraph(g, 1)
        assert order_arm == 3

    def test_hypercube4_vertex(self):
        # Two coordinate 4-cycles sharing only the root: 7 vertices.
        g = hypercube_graph(4)
        order, mask = minimum_even_subgraph(g, 0)
        assert order == 7
        assert is_even_edge_set(g, mask)
        assert contains_all_incident(g, mask, 0)

    def test_odd_degree_rejected(self):
        with pytest.raises(GoodnessError):
            minimum_even_subgraph(theta_graph(2, 2, 3), 0)

    def test_enumeration_cap_raises(self):
        g = hypercube_graph(4)
        with pytest.raises(GoodnessError):
            minimum_even_subgraph(g, 0, max_enumeration_bits=3)

    def test_result_is_optimal_certificate(self):
        # the returned mask itself must be even and contain E(v)
        g = complete_graph(5)
        for v in range(5):
            order, mask = minimum_even_subgraph(g, v)
            assert is_even_edge_set(g, mask)
            assert contains_all_incident(g, mask, v)
            assert len(vertex_support(g, mask)) == order

    def test_double_edge_pair(self):
        # two parallel edges form an even subgraph on 2 vertices
        g = Graph(2, [(0, 1), (0, 1)])
        order, mask = minimum_even_subgraph(g, 0)
        assert order == 2
        assert mask == edge_mask([0, 1])
