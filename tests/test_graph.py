"""Unit tests for the multigraph substrate (repro.graphs.graph)."""

import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph, GraphBuilder


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.n == 0
        assert g.m == 0
        assert g.is_regular()

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        assert g.n == 2
        assert g.m == 1
        assert g.degree(0) == g.degree(1) == 1
        assert g.endpoints(0) == (0, 1)

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(-1, 0)])

    def test_name_is_carried(self):
        g = Graph(1, [], name="solo")
        assert g.name == "solo"
        assert "solo" in repr(g)


class TestLoopsAndParallels:
    def test_loop_counts_twice_in_degree(self):
        g = Graph(2, [(0, 0), (0, 1)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_loop_appears_twice_in_incidence(self):
        g = Graph(1, [(0, 0)])
        assert len(g.incidence(0)) == 2
        assert g.incidence(0) == ((0, 0), (0, 0))

    def test_parallel_edges_distinct_ids(self):
        g = Graph(2, [(0, 1), (0, 1)])
        assert g.m == 2
        assert g.degree(0) == 2
        assert g.edge_ids_between(0, 1) == (0, 1)

    def test_has_loops_and_parallels_flags(self):
        assert Graph(1, [(0, 0)]).has_loops()
        assert not Graph(2, [(0, 1)]).has_loops()
        assert Graph(2, [(0, 1), (1, 0)]).has_parallel_edges()
        assert not Graph(3, [(0, 1), (1, 2)]).has_parallel_edges()

    def test_is_simple(self):
        assert Graph(3, [(0, 1), (1, 2)]).is_simple()
        assert not Graph(2, [(0, 1), (0, 1)]).is_simple()
        assert not Graph(1, [(0, 0)]).is_simple()

    def test_loop_edge_ids_between_deduplicated(self):
        g = Graph(1, [(0, 0), (0, 0)])
        assert g.edge_ids_between(0, 0) == (0, 1)


class TestAccessors:
    def test_degrees_sum_to_twice_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 0)])
        assert sum(g.degrees()) == 2 * g.m
        assert g.total_degree == 2 * g.m

    def test_neighbors_sorted_unique(self):
        g = Graph(4, [(0, 3), (0, 1), (0, 1)])
        assert g.neighbors(0) == (1, 3)

    def test_loop_makes_self_neighbor(self):
        g = Graph(2, [(0, 0), (0, 1)])
        assert 0 in g.neighbors(0)

    def test_other_endpoint(self):
        g = Graph(3, [(0, 2)])
        assert g.other_endpoint(0, 0) == 2
        assert g.other_endpoint(0, 2) == 0
        with pytest.raises(GraphError):
            g.other_endpoint(0, 1)

    def test_other_endpoint_loop(self):
        g = Graph(1, [(0, 0)])
        assert g.other_endpoint(0, 0) == 0

    def test_incident_edges(self):
        g = Graph(3, [(0, 1), (0, 2), (1, 2)])
        assert g.incident_edges(0) == (0, 1)
        assert g.incident_edges(2) == (1, 2)

    def test_has_edge(self):
        g = Graph(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 99)

    def test_max_min_degree(self):
        g = Graph(3, [(0, 1), (0, 2)])
        assert g.max_degree == 2
        assert g.min_degree == 1

    def test_iteration_and_len(self):
        g = Graph(3, [])
        assert list(g) == [0, 1, 2]
        assert len(g) == 3


class TestRegularityAndParity:
    def test_regularity(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 0)])
        assert g.is_regular()
        assert g.regularity() == 2

    def test_not_regular(self):
        g = Graph(3, [(0, 1)])
        assert not g.is_regular()
        with pytest.raises(GraphError):
            g.regularity()

    def test_even_degrees(self):
        triangle = Graph(3, [(0, 1), (1, 2), (2, 0)])
        assert triangle.has_even_degrees()
        path = Graph(2, [(0, 1)])
        assert not path.has_even_degrees()

    def test_loop_preserves_even_parity(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 0), (0, 0)])
        assert g.has_even_degrees()


class TestDerivedGraphs:
    def test_edge_subgraph_keeps_vertex_set(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.edge_subgraph([0, 2])
        assert sub.n == 4
        assert sub.m == 2
        assert sub.edges() == ((0, 1), (2, 3))

    def test_edge_subgraph_bad_id(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(GraphError):
            g.edge_subgraph([5])

    def test_relabeled(self):
        g = Graph(2, [(0, 1)], name="a")
        h = g.relabeled("b")
        assert h.name == "b"
        assert h == g


class TestEquality:
    def test_equal_ignores_edge_order_and_orientation(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(2, 1), (1, 0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_different_multiplicity(self):
        a = Graph(2, [(0, 1)])
        b = Graph(2, [(0, 1), (0, 1)])
        assert a != b

    def test_unequal_different_n(self):
        assert Graph(2, [(0, 1)]) != Graph(3, [(0, 1)])

    def test_eq_non_graph(self):
        assert Graph(1, []) != "graph"


class TestGraphBuilder:
    def test_incremental_build(self):
        b = GraphBuilder()
        v0 = b.add_vertex()
        v1 = b.add_vertex()
        eid = b.add_edge(v0, v1)
        assert eid == 0
        g = b.build("pair")
        assert (g.n, g.m, g.name) == (2, 1, "pair")

    def test_add_vertices_range(self):
        b = GraphBuilder()
        r = b.add_vertices(5)
        assert list(r) == [0, 1, 2, 3, 4]
        assert b.num_vertices == 5

    def test_negative_vertices_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(-1)
        with pytest.raises(GraphError):
            GraphBuilder().add_vertices(-1)

    def test_edge_requires_existing_vertices(self):
        b = GraphBuilder(1)
        with pytest.raises(GraphError):
            b.add_edge(0, 1)

    def test_ensure_vertices(self):
        b = GraphBuilder(2)
        b.ensure_vertices(5)
        assert b.num_vertices == 5
        b.ensure_vertices(3)  # never shrinks
        assert b.num_vertices == 5

    def test_add_path_and_cycle(self):
        b = GraphBuilder(4)
        b.add_path([0, 1, 2])
        b.add_cycle([0, 2, 3])
        g = b.build()
        assert g.m == 2 + 3
        assert g.has_edge(3, 0)

    def test_single_vertex_cycle_is_loop(self):
        b = GraphBuilder(1)
        b.add_cycle([0])
        g = b.build()
        assert g.m == 1
        assert g.has_loops()

    def test_add_edges_bulk(self):
        b = GraphBuilder(3)
        b.add_edges([(0, 1), (1, 2)])
        assert b.num_edges == 2


class TestCSRLayout:
    def test_offsets_are_degree_cumsums(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        offsets = g.csr_offsets
        assert offsets.tolist() == [0, 2, 5, 7, 10]
        assert offsets[-1] == g.total_degree

    def test_entries_match_incidence_order(self):
        g = Graph(5, [(0, 1), (0, 1), (2, 2), (1, 2), (3, 4)])
        offsets, edge_ids, neighbors = g.csr_arrays()
        for v in range(g.n):
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            entries = list(zip(edge_ids[lo:hi].tolist(), neighbors[lo:hi].tolist()))
            assert entries == list(g.incidence(v))

    def test_loop_contributes_two_entries(self):
        g = Graph(1, [(0, 0)])
        assert g.csr_offsets.tolist() == [0, 2]
        assert g.csr_neighbors.tolist() == [0, 0]
        assert g.csr_edge_ids.tolist() == [0, 0]

    def test_cached_and_read_only(self):
        g = Graph(3, [(0, 1), (1, 2)])
        first = g.csr_arrays()
        second = g.csr_arrays()
        assert all(a is b for a, b in zip(first, second))
        with pytest.raises(ValueError):
            g.csr_offsets[0] = 7

    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.csr_offsets.tolist() == [0]
        assert g.csr_edge_ids.size == 0


class TestScratchAndPickle:
    def test_scratch_cache_persists(self):
        g = Graph(2, [(0, 1)])
        g.scratch_cache()["k"] = 41
        assert g.scratch_cache()["k"] == 41

    def test_pickle_roundtrip_drops_caches(self):
        import pickle

        g = Graph(3, [(0, 1), (1, 2), (2, 0)], name="tri")
        g.csr_arrays()
        g.scratch_cache()["payload"] = list(range(10))
        clone = pickle.loads(pickle.dumps(g))
        assert clone == g
        assert clone.name == "tri"
        assert clone.incidence(1) == g.incidence(1)
        assert clone.scratch_cache() == {}

    def test_scratch_invisible_to_equality_and_hash(self):
        a = Graph(2, [(0, 1)])
        b = Graph(2, [(0, 1)])
        a.scratch_cache()["x"] = 1
        assert a == b
        assert hash(a) == hash(b)
