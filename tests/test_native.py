"""Native fused kernel vs. the numpy stepwise fleets, bit for bit.

The contract: with the C extension loaded, every stepwise fleet block
runs through one fused call that consumes the same Mersenne-Twister
words in the same per-lane order as the numpy kernel — so cover times,
first-visit tables (vertices and edges), red/blue splits, phase marks,
final positions, and every generator's end-state are identical between
``native=True`` and ``native=False`` runs, and both match the per-trial
reference walks.

The suite covers every fleet walk (srw / eprocess / vprocess), regular
and irregular lanes (packed bitmask tables, the general cumulative-rank
path, and the >16-degree regular path), shared and distinct-graph
(tiled) fleets, K in {1, 2, 7, 32}, both cover targets, budget timeouts,
and the loader's fallback behaviour (numpy path + one RuntimeWarning)
when the extension is missing.
"""

import random
import warnings

import pytest

from repro.core.eprocess import EdgeProcess
from repro.engine import FleetEdgeProcess, FleetSRW, FleetVProcess, native
from repro.errors import CoverTimeout, ReproError
from repro.graphs.generators import complete_graph, lollipop_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.runner import run_trials
from repro.walks.choice import UnvisitedVertexWalk
from repro.walks.srw import SimpleRandomWalk

FLEET_SIZES = [1, 2, 7, 32]

FLEETS = {
    "srw": FleetSRW,
    "eprocess": FleetEdgeProcess,
    "vprocess": FleetVProcess,
}

REFERENCES = {
    "srw": lambda g, s, r: SimpleRandomWalk(g, s, rng=r, track_edges=True),
    "eprocess": lambda g, s, r: EdgeProcess(g, s, rng=r, record_phases=True),
    "vprocess": lambda g, s, r: UnvisitedVertexWalk(g, s, rng=r, track_edges=True),
}

native_built = pytest.mark.skipif(
    not native.available(),
    reason="native fused kernel not built (no compiler?)",
)


def _graph(shape: str):
    if shape == "regular":
        # 4-regular: the packed 2^d bitmask path for the E-/V-process.
        return random_connected_regular_graph(60, 4, random.Random(7))
    if shape == "bigdegree":
        # 17-regular: regular but past PACKED_DEGREE_MAX, so the E-/V-
        # process fleets run the general candidate scan with d fixed.
        return complete_graph(18)
    # Clique + pendant path: degrees 1..6, the per-degree prefilter path
    # (and the SRW fleet's only stepwise shape — regular SRW fleets use
    # the prefiltered block kernel, which has no native variant).
    return lollipop_graph(6, 9)


def _lanes(graph, K, base_seed):
    starts = [random.Random(100 + k).randrange(graph.n) for k in range(K)]
    rngs = [random.Random(base_seed + k) for k in range(K)]
    twins = [random.Random(base_seed + k) for k in range(K)]
    return starts, rngs, twins


def _snapshot(walk_name, fleet, K):
    """Everything a fleet exposes post-run, per lane."""
    snap = {
        "positions": fleet.positions,
        "cover": list(fleet.cover_steps),
        "fv": [fleet.first_visit_time(k) for k in range(K)],
    }
    if walk_name in ("eprocess", "vprocess"):
        snap["fe"] = [fleet.first_edge_visit_time(k) for k in range(K)]
    if walk_name == "eprocess":
        snap["red"] = fleet.red_steps
        snap["blue"] = fleet.blue_steps
        snap["marks"] = [fleet.phase_marks(k) for k in range(K)]
        snap["last"] = [fleet.last_color(k) for k in range(K)]
    return snap


def _make_fleet(walk_name, graphs, starts, rngs, native_pref):
    cls = FLEETS[walk_name]
    if walk_name == "eprocess":
        return cls(graphs, starts, rngs, record_phases=True, native=native_pref)
    return cls(graphs, starts, rngs, native=native_pref)


@native_built
class TestNativeVsNumpyParity:
    @pytest.mark.parametrize("K", FLEET_SIZES)
    @pytest.mark.parametrize("target", ["vertices", "edges"])
    @pytest.mark.parametrize("shape", ["regular", "irregular"])
    @pytest.mark.parametrize("walk", sorted(FLEETS))
    def test_native_matches_numpy_and_reference(self, walk, shape, target, K):
        graph = _graph(shape)
        starts, n_rngs, p_rngs = _lanes(graph, K, 1000)
        twins = [random.Random(1000 + k) for k in range(K)]

        nat = _make_fleet(walk, [graph] * K, starts, n_rngs, True)
        cover_nat = nat.run_until_cover(target=target)
        num = _make_fleet(walk, [graph] * K, starts, p_rngs, False)
        cover_num = num.run_until_cover(target=target)

        assert cover_nat == cover_num
        assert _snapshot(walk, nat, K) == _snapshot(walk, num, K)
        for k in range(K):
            assert n_rngs[k].getstate() == p_rngs[k].getstate()
            walk_ref = REFERENCES[walk](graph, starts[k], twins[k])
            expected = (
                walk_ref.run_until_vertex_cover()
                if target == "vertices"
                else walk_ref.run_until_edge_cover()
            )
            assert cover_nat[k] == expected
            assert n_rngs[k].getstate() == twins[k].getstate()

    @pytest.mark.parametrize("walk", ["eprocess", "vprocess"])
    def test_big_degree_regular_general_path(self, walk):
        # Regular but d > PACKED_DEGREE_MAX: the non-packed fixed-degree
        # branch of the kernel.
        graph = _graph("bigdegree")
        K = 7
        starts, n_rngs, p_rngs = _lanes(graph, K, 4000)
        nat = _make_fleet(walk, [graph] * K, starts, n_rngs, True)
        num = _make_fleet(walk, [graph] * K, starts, p_rngs, False)
        assert nat.run_until_cover("edges") == num.run_until_cover("edges")
        assert _snapshot(walk, nat, K) == _snapshot(walk, num, K)
        for k in range(K):
            assert n_rngs[k].getstate() == p_rngs[k].getstate()

    @pytest.mark.parametrize("walk", sorted(FLEETS))
    def test_distinct_graphs_per_lane(self, walk):
        # Tiled incidence rows: lane-major row bases in the kernel.
        K = 7
        graphs = [
            random_connected_regular_graph(40, 4, random.Random(50 + k))
            for k in range(K)
        ]
        starts = [k % 40 for k in range(K)]
        n_rngs = [random.Random(2000 + k) for k in range(K)]
        p_rngs = [random.Random(2000 + k) for k in range(K)]
        nat = _make_fleet(walk, graphs, starts, n_rngs, True)
        num = _make_fleet(walk, graphs, starts, p_rngs, False)
        assert nat.run_until_cover("vertices") == num.run_until_cover("vertices")
        assert _snapshot(walk, nat, K) == _snapshot(walk, num, K)
        for k in range(K):
            assert n_rngs[k].getstate() == p_rngs[k].getstate()

    @pytest.mark.parametrize("walk", sorted(FLEETS))
    def test_timeout_syncs_rng_like_numpy(self, walk):
        graph = _graph("irregular")
        K = 8  # above the tail hand-off, so the lockstep kernel times out
        starts, n_rngs, p_rngs = _lanes(graph, K, 3000)
        budget = 37
        nat = _make_fleet(walk, [graph] * K, starts, n_rngs, True)
        with pytest.raises(CoverTimeout):
            nat.run_until_cover("edges", max_steps=budget)
        num = _make_fleet(walk, [graph] * K, starts, p_rngs, False)
        with pytest.raises(CoverTimeout):
            num.run_until_cover("edges", max_steps=budget)
        for k in range(K):
            assert n_rngs[k].getstate() == p_rngs[k].getstate()

    def test_word_row_refill_midstream(self):
        # A run long enough to exhaust the 4096-word rows many times over:
        # refills must stay invisible (exact word accounting end to end).
        graph = lollipop_graph(7, 30)
        K = 7
        starts, n_rngs, p_rngs = _lanes(graph, K, 5000)
        nat = FleetSRW([graph] * K, starts, n_rngs, native=True)
        num = FleetSRW([graph] * K, starts, p_rngs, native=False)
        assert nat.run_until_cover("edges") == num.run_until_cover("edges")
        for k in range(K):
            assert n_rngs[k].getstate() == p_rngs[k].getstate()

    def test_runner_fleet_native_tristate(self):
        graph = _graph("regular")
        common = dict(
            workload=graph,
            walk_factory="eprocess",
            trial_indices=range(9),
            root_seed=11,
            engine="fleet",
            fleet_size=4,
        )
        on = run_trials(fleet_native=True, **common)
        off = run_trials(fleet_native=False, **common)
        auto = run_trials(**common)
        assert [o.steps for o in on] == [o.steps for o in off]
        assert [o.steps for o in auto] == [o.steps for o in off]


class TestNativeLoader:
    def test_env_opt_out_disables_without_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert native.load() is None
            assert not native.available()
            assert "REPRO_NATIVE" in native.unavailable_reason()
        finally:
            monkeypatch.undo()
            native._reset_probe_for_testing()

    @native_built
    def test_env_flip_reprobes(self, monkeypatch):
        assert native.available()
        monkeypatch.setenv("REPRO_NATIVE", "off")
        assert not native.available()
        monkeypatch.delenv("REPRO_NATIVE")
        assert native.available()
        assert native.kernel_path() is not None

    def test_missing_extension_falls_back_and_warns_once(self, monkeypatch):
        graph = _graph("irregular")
        # An explicit REPRO_NATIVE=0 suppresses the warning by design;
        # this test simulates a *missing build* under default settings.
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setattr(native, "_find_extension", lambda: None)
        native._reset_probe_for_testing()
        try:
            with pytest.warns(RuntimeWarning, match="native fused kernel unavailable"):
                assert native.load() is None
            # Second probe is silent: the fallback warns once per process.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert native.load() is None
                assert not native.available()

            # Auto preference still runs — on the numpy path — and stays
            # bit-identical to the reference walk.
            K = 3
            starts, rngs, twins = _lanes(graph, K, 7000)
            fleet = FleetVProcess([graph] * K, starts, rngs)
            cover = fleet.run_until_cover("vertices")
            for k in range(K):
                ref = UnvisitedVertexWalk(
                    graph, starts[k], rng=twins[k], track_edges=True
                )
                assert cover[k] == ref.run_until_vertex_cover()
                assert rngs[k].getstate() == twins[k].getstate()

            # An explicit native=True is a hard error, never silent numpy.
            starts, rngs, _ = _lanes(graph, 2, 8000)
            fleet = FleetVProcess([graph] * 2, starts, rngs, native=True)
            with pytest.raises(ReproError, match="fused kernel is unavailable"):
                fleet.run_until_cover("vertices")
        finally:
            monkeypatch.undo()
            native._reset_probe_for_testing()

    @native_built
    def test_abi_mismatch_refused(self, monkeypatch):
        native._reset_probe_for_testing()
        monkeypatch.setattr(native, "ABI_VERSION", 999)
        try:
            with pytest.warns(RuntimeWarning, match="ABI"):
                assert native.load() is None
            assert "ABI" in native.unavailable_reason()
        finally:
            monkeypatch.undo()
            native._reset_probe_for_testing()

    @native_built
    def test_native_false_skips_kernel(self):
        # native=False must not even probe per-fleet state: the numpy and
        # native fleets share every other code path, so the only visible
        # difference is throughput.  Spot-check the flag plumbs through.
        graph = _graph("irregular")
        starts, rngs, twins = _lanes(graph, 2, 9000)
        fleet = FleetSRW([graph] * 2, starts, rngs, native=False)
        fleet.run_until_cover("vertices")
        assert fleet._native is None
        fleet2 = FleetSRW([graph] * 2, starts, twins, native=None)
        fleet2.run_until_cover("vertices")
        assert fleet2._native is not None
