"""Fleet stepping: lockstep many-trial SRW vs. sequential walks.

Two layers under test:

* :class:`repro.engine.fleet.FleetSRW` directly — every lane's cover
  time, final position, first-visit table, and generator end-state must
  equal a sequential :class:`~repro.walks.srw.SimpleRandomWalk` run of
  the same seed, for every fleet size and both cover targets;
* the runner surface — ``cover_time_trials(engine="fleet")`` must be
  bit-identical to ``engine="reference"`` for every worker count and
  fleet size, raise :class:`ReproError` naming the offending lane when a
  batch is fleet-ineligible, and share store buckets across engine
  switches.

The E-/V-process fleets have their own parity suite in
``tests/test_fleet_unvisited.py``.
"""

import random

import pytest

from repro.engine import DEFAULT_FLEET_SIZE, FleetSRW, fleet_supported
from repro.errors import CoverTimeout, GraphError, ReproError
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.runner import cover_time_trials
from repro.walks.srw import SimpleRandomWalk

FLEET_SIZES = [1, 2, 7, 32]


def _regular(n=200, d=4, seed=7):
    return random_connected_regular_graph(n, d, random.Random(seed))


class TestFleetSRWParity:
    @pytest.mark.parametrize("K", FLEET_SIZES)
    @pytest.mark.parametrize("target", ["vertices", "edges"])
    def test_shared_graph_lanes_match_sequential_walks(self, K, target):
        graph = _regular()
        starts = [random.Random(100 + k).randrange(graph.n) for k in range(K)]
        rngs = [random.Random(1000 + k) for k in range(K)]
        twins = [random.Random(1000 + k) for k in range(K)]
        fleet = FleetSRW([graph] * K, starts, rngs)
        cover = fleet.run_until_cover(target=target)
        for k in range(K):
            walk = SimpleRandomWalk(graph, starts[k], rng=twins[k], track_edges=True)
            expected = (
                walk.run_until_vertex_cover()
                if target == "vertices"
                else walk.run_until_edge_cover()
            )
            assert cover[k] == expected
            assert rngs[k].getstate() == twins[k].getstate()
            assert fleet.positions[k] == walk.current
            reference_fv = (
                walk.first_visit_time
                if target == "vertices"
                else walk.first_edge_visit_time
            )
            assert fleet.first_visit_time(k) == list(reference_fv)

    def test_distinct_same_shape_graphs_per_lane(self):
        # The factory-workload shape: a fresh random regular graph per
        # trial, all same (n, d) — lanes are globalized side by side.
        K = 7
        graphs = [random_connected_regular_graph(80, 4, random.Random(50 + k)) for k in range(K)]
        starts = [k % 80 for k in range(K)]
        rngs = [random.Random(2000 + k) for k in range(K)]
        twins = [random.Random(2000 + k) for k in range(K)]
        fleet = FleetSRW(graphs, starts, rngs)
        cover = fleet.run_until_cover("vertices")
        for k in range(K):
            walk = SimpleRandomWalk(graphs[k], starts[k], rng=twins[k], track_edges=True)
            assert cover[k] == walk.run_until_vertex_cover()
            assert rngs[k].getstate() == twins[k].getstate()

    def test_odd_degree_modulus(self):
        graph = _regular(n=90, d=3, seed=2)
        rng, twin = random.Random(4), random.Random(4)
        fleet = FleetSRW([graph], [0], [rng])
        walk = SimpleRandomWalk(graph, 0, rng=twin)
        assert fleet.run_until_cover("vertices") == [walk.run_until_vertex_cover()]
        assert rng.getstate() == twin.getstate()

    def test_trivial_graph_covers_at_zero_without_rng(self):
        rng = random.Random(5)
        before = rng.getstate()
        fleet = FleetSRW([Graph(1, [])], [0], [rng])
        assert fleet.run_until_cover("vertices") == [0]
        assert rng.getstate() == before

    def test_budget_timeout_raises(self):
        fleet = FleetSRW(
            [cycle_graph(40)] * 2, [0, 0], [random.Random(3), random.Random(4)]
        )
        with pytest.raises(CoverTimeout):
            fleet.run_until_cover("vertices", max_steps=25)

    def test_tail_timeout_preserves_finished_lane_rng(self):
        # A straggler's CoverTimeout during the scalar tail hand-off must
        # not rewind the generators of lanes that already finished there.
        from repro.graphs.generators import lollipop_graph

        graph = lollipop_graph(5, 12)
        rngs = [random.Random(33), random.Random(21)]
        twins = [random.Random(33), random.Random(21)]
        fleet = FleetSRW([graph, graph], [0, 0], rngs)
        with pytest.raises(CoverTimeout):
            fleet.run_until_cover("vertices", max_steps=1075)
        walk = SimpleRandomWalk(graph, 0, rng=twins[0], track_edges=True)
        assert walk.run_until_vertex_cover() <= 1075  # lane 0 did finish
        assert rngs[0].getstate() == twins[0].getstate()


class TestFleetEligibility:
    def test_irregular_graph_supported(self):
        # Irregular lanes fleet since the per-degree word-role prefilter:
        # the stepwise kernel handles state-dependent draw moduli.
        ok, reason = fleet_supported([path_graph(5)], [random.Random(0)])
        assert ok and reason == ""

    def test_unknown_walk_unsupported(self):
        ok, reason = fleet_supported(
            [cycle_graph(10)], [random.Random(0)], walk="rotor"
        )
        assert not ok and "no fleet kernel" in reason

    def test_eprocess_rejects_self_loops(self):
        looped = Graph(3, [(0, 0), (0, 1), (1, 2)])  # same (n, m) as C_3
        ok, reason = fleet_supported(
            [cycle_graph(3), looped], [random.Random(0), random.Random(1)],
            walk="eprocess",
        )
        assert not ok and "lane 1" in reason and "self-loops" in reason

    def test_vprocess_rejects_parallel_edges(self):
        multi = Graph(3, [(0, 1), (0, 1), (1, 2)])
        ok, reason = fleet_supported([multi], [random.Random(0)], walk="vprocess")
        assert not ok and "lane 0" in reason and "simple" in reason

    def test_labels_name_the_offending_trial(self):
        ok, reason = fleet_supported(
            [cycle_graph(10), cycle_graph(12)],
            [random.Random(0), random.Random(1)],
            labels=[17, 23],
        )
        assert not ok and "lane 1 (trial 23)" in reason

    def test_mixed_shapes_unsupported(self):
        ok, reason = fleet_supported(
            [cycle_graph(10), cycle_graph(12)], [random.Random(0)]
        )
        assert not ok and "shape" in reason

    def test_shared_rng_instance_unsupported(self):
        # One generator driving two lanes would correlate the "independent"
        # trials and double-sync its end state; must be an explicit error.
        rng = random.Random(1)
        ok, reason = fleet_supported([cycle_graph(10)] * 2, [rng, rng])
        assert not ok and "share" in reason

    def test_exotic_rng_unsupported(self):
        class Custom(random.Random):
            def random(self):
                return 0.5

        ok, reason = fleet_supported([cycle_graph(10)], [Custom(1)])
        assert not ok and "Mersenne" in reason

    def test_constructor_validates_starts(self):
        with pytest.raises(GraphError):
            FleetSRW([cycle_graph(10)], [99], [random.Random(0)])


class TestFleetRunnerSurface:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("fleet_size", FLEET_SIZES)
    def test_bit_identical_to_reference(self, workers, fleet_size):
        from repro.experiments.spec import family_workload

        workload = family_workload("regular", {"n": 80, "degree": 4})
        reference = cover_time_trials(
            workload, "srw", trials=9, root_seed=42, engine="reference"
        )
        fleet = cover_time_trials(
            workload,
            "srw",
            trials=9,
            root_seed=42,
            engine="fleet",
            workers=workers,
            fleet_size=fleet_size,
        )
        assert fleet.cover_times == reference.cover_times

    def test_edges_target_fixed_graph(self):
        graph = _regular(n=60)
        reference = cover_time_trials(
            graph, "srw", trials=6, root_seed=7, target="edges", engine="reference"
        )
        fleet = cover_time_trials(
            graph, "srw", trials=6, root_seed=7, target="edges",
            engine="fleet", fleet_size=4,
        )
        assert fleet.cover_times == reference.cover_times

    def test_irregular_graph_runs_stepwise_kernel(self):
        # Irregular graphs fleet too (per-degree word prefilters) — no
        # fallback, same numbers.
        graph = path_graph(12)
        reference = cover_time_trials(graph, "srw", trials=4, root_seed=3)
        fleet = cover_time_trials(
            graph, "srw", trials=4, root_seed=3, engine="fleet"
        )
        assert fleet.cover_times == reference.cover_times

    def test_ineligible_batch_raises_naming_lane_and_trial(self):
        # A workload factory whose graphs disagree on (n, m) cannot fleet;
        # the error carries fleet_supported's reason, which names the
        # offending lane and its trial id.
        def varying(rng):
            return cycle_graph(10 + rng.randrange(3))

        with pytest.raises(ReproError, match=r"lane \d+ \(trial \d+\).*shape"):
            cover_time_trials(varying, "srw", trials=6, root_seed=1, engine="fleet")

    def test_fleet_rejects_walks_without_fleet_engine(self):
        with pytest.raises(ReproError, match="'fleet' engine"):
            cover_time_trials(
                cycle_graph(10), "rotor", trials=2, root_seed=1, engine="fleet"
            )

    def test_fleet_rejects_extra_metrics(self):
        with pytest.raises(ReproError, match="extra_metrics"):
            cover_time_trials(
                cycle_graph(10),
                "srw",
                trials=2,
                root_seed=1,
                engine="fleet",
                extra_metrics=lambda walk: {"steps": walk.steps},
            )

    def test_bad_fleet_size_rejected(self):
        with pytest.raises(ReproError, match="fleet_size"):
            cover_time_trials(
                cycle_graph(10), "srw", trials=2, root_seed=1,
                engine="fleet", fleet_size=0,
            )

    def test_default_fleet_size_sane(self):
        assert DEFAULT_FLEET_SIZE >= 1


class TestFleetStoreIntegration:
    def test_engine_switch_schedules_zero_trials(self, tmp_path):
        from repro.experiments import ResultStore, SweepSpec, run_sweep

        store = ResultStore(tmp_path / "store")
        sweep = SweepSpec.regular_grid(
            "fleet-switch", sizes=[40], degrees=[4], walk="srw", trials=4, root_seed=9
        )
        cold = run_sweep(sweep, store=store)
        assert (cold.scheduled, cold.cached) == (4, 0)
        fleet_sweep = SweepSpec.regular_grid(
            "fleet-switch", sizes=[40], degrees=[4], walk="srw", trials=4,
            root_seed=9, engine="fleet",
        )
        warm = run_sweep(fleet_sweep, store=store)
        assert (warm.scheduled, warm.cached) == (0, 4)
        assert warm.points[0].run.cover_times == cold.points[0].run.cover_times

    def test_fleet_topup_matches_reference_cold_run(self, tmp_path):
        from repro.experiments import ResultStore, SweepSpec, run_sweep

        store = ResultStore(tmp_path / "store")
        base = SweepSpec.regular_grid(
            "topup", sizes=[40], degrees=[4], walk="srw", trials=3, root_seed=9
        )
        run_sweep(base, store=store)
        topped = SweepSpec.regular_grid(
            "topup", sizes=[40], degrees=[4], walk="srw", trials=8,
            root_seed=9, engine="fleet",
        )
        up = run_sweep(topped, store=store, fleet_size=2)
        assert (up.scheduled, up.cached) == (5, 3)
        cold_store = ResultStore(tmp_path / "cold")
        cold = run_sweep(
            SweepSpec.regular_grid(
                "topup", sizes=[40], degrees=[4], walk="srw", trials=8, root_seed=9
            ),
            store=cold_store,
        )
        assert up.points[0].run.cover_times == cold.points[0].run.cover_times
