"""Tests for ℓ-goodness (exact values, lower bounds, (P2) search)."""

import math

import pytest

from repro.core.goodness import (
    corollary2_ell,
    ell_goodness_exact,
    ell_lower_bound_girth,
    ell_value_at,
    is_ell_good,
    p2_max_density_ratio,
    p2_violation_search,
)
from repro.errors import GoodnessError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    torus_grid,
)
from repro.graphs.random_regular import random_connected_regular_graph


class TestExactValues:
    def test_cycle_is_n_good(self):
        # On C_n the only even subgraph containing a vertex's edges is the
        # whole cycle.
        n = 8
        g = cycle_graph(n)
        assert ell_goodness_exact(g) == n
        assert is_ell_good(g, n)
        assert not is_ell_good(g, n + 1)

    def test_bowtie_values(self, bowtie):
        assert ell_value_at(bowtie, 0) == 5  # centre: both triangles
        assert ell_value_at(bowtie, 1) == 3  # arm: one triangle
        assert ell_goodness_exact(bowtie) == 3

    def test_k5(self, k5):
        assert ell_goodness_exact(k5) == 5

    def test_hypercube4(self):
        # each vertex needs two coordinate squares: 7 vertices
        g = hypercube_graph(4)
        assert ell_value_at(g, 0) == 7

    def test_torus(self):
        # a vertex's 4 edges force two girth-4 cycles sharing it: order >= 7;
        # two unit squares (or a row plus a column cycle) achieve exactly 7
        g = torus_grid(4, 4)
        assert ell_value_at(g, 0) == 7

    def test_odd_degree_rejected(self, k4):
        with pytest.raises(GoodnessError):
            ell_goodness_exact(k4)

    def test_no_vertices_rejected(self, k5):
        with pytest.raises(GoodnessError):
            ell_goodness_exact(k5, vertices=[])


class TestLowerBounds:
    def test_girth_bound_graph_level(self):
        g = torus_grid(4, 4)
        assert ell_lower_bound_girth(g) == 4
        assert ell_goodness_exact(g, vertices=[0]) >= 4

    def test_girth_bound_vertex_level(self, bowtie):
        assert ell_lower_bound_girth(bowtie, vertex=0) == 3
        assert ell_value_at(bowtie, 0) >= 3

    def test_bound_never_exceeds_exact_on_small_graphs(self, k5, bowtie):
        for g in (k5, bowtie, cycle_graph(6), torus_grid(4, 4)):
            for v in range(min(g.n, 4)):
                assert ell_lower_bound_girth(g, vertex=v) <= ell_value_at(g, v)


class TestCorollary2:
    def test_formula(self):
        n, r = 10_000, 4
        expected = math.log(n) / (4 * math.log(r * math.e))
        assert corollary2_ell(n, r) == pytest.approx(expected)

    def test_grows_with_n(self):
        assert corollary2_ell(10_000, 4) > corollary2_ell(100, 4)

    def test_odd_r_rejected(self):
        with pytest.raises(GoodnessError):
            corollary2_ell(1000, 3)

    def test_r_two_rejected(self):
        with pytest.raises(GoodnessError):
            corollary2_ell(1000, 2)


class TestP2:
    def test_density_ratio_known_sets(self, k5):
        # K5 on 4 vertices induces 6 edges: ratio 6 - 4 = 2 (violation)
        assert p2_max_density_ratio(k5, [[0, 1, 2, 3]]) == 2
        # a triangle induces 3 edges on 3 vertices: ratio 0 (boundary case)
        assert p2_max_density_ratio(k5, [[0, 1, 2]]) == 0

    def test_empty_input_rejected(self, k5):
        with pytest.raises(GoodnessError):
            p2_max_density_ratio(k5, [])

    def test_violation_found_on_dense_graph(self, rng):
        # K6 is saturated with dense subgraphs: the search must find one.
        hit = p2_violation_search(complete_graph(6), max_size=5, rng=rng, samples=500)
        assert hit is not None
        vertices, induced = hit
        assert induced > len(vertices)

    def test_no_violation_on_sparse_random_regular(self, rng_factory):
        # Lemma 18 / (P2): small sets in random 4-regular graphs are sparse
        # whp; at n = 300 and s <= 7 a violation would be extraordinary.
        g = random_connected_regular_graph(300, 4, rng_factory(13))
        hit = p2_violation_search(g, max_size=7, rng=rng_factory(14), samples=1500)
        assert hit is None

    def test_max_size_validation(self, rng, k5):
        with pytest.raises(GoodnessError):
            p2_violation_search(k5, max_size=2, rng=rng)
