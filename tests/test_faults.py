"""Fault-injection tests: the store, runner and scheduler under planned failures.

Everything here drives the ``REPRO_FAULTS`` plan from
:mod:`repro.testing.faults` — deterministic worker kills, stalls and
write errors — and asserts the robustness contract of ISSUE 8: runs
complete, results stay bit-identical to undisturbed execution, and the
telemetry counters account for every absorbed fault.
"""

import errno
import json
import os
import subprocess
import sys

import pytest

from repro.errors import ReproError, TrialTimeout
from repro.experiments.scheduler import run_point, run_sweep
from repro.graphs.generators import cycle_graph
from repro.experiments.spec import ExperimentSpec, SweepSpec
from repro.experiments.store import ResultStore
from repro.sim.runner import cover_time_trials, run_trials
from repro.telemetry import Telemetry, session
from repro.testing.faults import (
    FAULTS_ENV_VAR,
    KILL_EXIT_CODE,
    FaultRule,
    active_plan,
    fault_plan,
    maybe_ioerror,
    maybe_stall,
    parse_plan,
    should_fire,
)


def _spec(**overrides):
    base = dict(
        family="cycle",
        family_params={"n": 16},
        walk="srw",
        trials=4,
        root_seed=7,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestPlanParsing:
    def test_empty_plan_is_none(self):
        assert parse_plan("") is None
        assert parse_plan("  ;  ; ") is None

    def test_single_rule_defaults(self):
        plan = parse_plan("worker_kill")
        (rule,) = plan.rules
        assert rule.site == "worker_kill"
        assert rule.trial is None and rule.count == 1 and rule.token is None

    def test_full_rule_and_multiple_rules(self):
        plan = parse_plan(
            "worker_kill:trial=2,count=3,token=/tmp/t.tok;"
            "trial_stall:seconds=0.25"
        )
        kill, stall = plan.rules
        assert (kill.trial, kill.count, kill.token) == (2, 3, "/tmp/t.tok")
        assert stall.site == "trial_stall" and stall.seconds == 0.25

    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            parse_plan("worker_kil")

    def test_unknown_key_rejected(self):
        with pytest.raises(ReproError, match="unknown key"):
            parse_plan("worker_kill:tril=2")

    def test_bad_value_rejected(self):
        with pytest.raises(ReproError, match="invalid value"):
            parse_plan("worker_kill:trial=two")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            parse_plan("worker_kill:trial")

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ReproError, match="count must be"):
            parse_plan("worker_kill:count=0")


class TestRuleSemantics:
    def test_trial_filter(self):
        rule = FaultRule(site="store_write", trial=3)
        assert not rule.matches("store_write", 2)
        assert not rule.matches("worker_kill", 3)
        assert rule.matches("store_write", 3)

    def test_count_budget_per_process(self):
        with fault_plan("store_write:count=2"):
            assert should_fire("store_write") is not None
            assert should_fire("store_write") is not None
            assert should_fire("store_write") is None

    def test_token_latch_fires_once_across_rule_instances(self, tmp_path):
        token = tmp_path / "latch.tok"
        first = FaultRule(site="worker_kill", token=str(token))
        assert first.claim()
        assert token.exists()
        # A fresh rule object (as a forked worker would parse) finds the
        # token and refuses — and never retries within its process.
        second = FaultRule(site="worker_kill", token=str(token))
        assert not second.claim()
        assert not second.matches("worker_kill", None)

    def test_plan_cache_tracks_env_changes(self):
        with fault_plan("store_write"):
            assert active_plan() is not None
        assert active_plan() is None

    def test_injection_helpers(self):
        with fault_plan("store_write:count=1"):
            with pytest.raises(OSError) as err:
                maybe_ioerror("store_write")
            assert err.value.errno == errno.ENOSPC
            maybe_ioerror("store_write")  # budget spent: no-op
        maybe_ioerror("store_write")  # no plan: no-op
        maybe_stall("trial_stall")  # no matching rule: returns immediately


class TestRunnerSupervision:
    def _workload(self):
        return cycle_graph(24)

    def _serial(self, trials=4, seed=11):
        return cover_time_trials(
            self._workload(), "srw", trials=trials, root_seed=seed, workers=1
        )

    def test_worker_kill_retried_bit_identical(self, tmp_path):
        token = tmp_path / "kill.tok"
        baseline = self._serial()
        tel = Telemetry()
        with fault_plan(f"worker_kill:trial=2,token={token}"):
            with session(tel):
                run = cover_time_trials(
                    self._workload(), "srw", trials=4, root_seed=11,
                    workers=2, retries=2,
                )
        assert run.cover_times == baseline.cover_times
        assert tel.counters.get("runner.worker_crashes", 0) >= 1
        assert token.exists()

    def test_worker_crash_mode_fail_raises(self, tmp_path):
        token = tmp_path / "kill.tok"
        with fault_plan(f"worker_kill:trial=1,token={token}"):
            with pytest.raises(ReproError, match="worker"):
                cover_time_trials(
                    self._workload(), "srw", trials=4, root_seed=11,
                    workers=2, retries=2, on_worker_crash="fail",
                )

    def test_worker_crash_mode_inline_degrades_immediately(self):
        baseline = self._serial()
        tel = Telemetry()
        # Standing kill rule, no token: every fresh pool worker would die,
        # but inline mode never enters a child process, so the run finishes.
        with fault_plan("worker_kill:count=100"):
            with session(tel):
                run = cover_time_trials(
                    self._workload(), "srw", trials=4, root_seed=11,
                    workers=2, retries=2, on_worker_crash="inline",
                )
        assert run.cover_times == baseline.cover_times
        assert tel.counters.get("runner.inline_fallbacks", 0) == 1

    def test_persistent_crashes_degrade_to_inline(self):
        baseline = self._serial()
        tel = Telemetry()
        with fault_plan("worker_kill:count=100"):
            with session(tel):
                run = cover_time_trials(
                    self._workload(), "srw", trials=4, root_seed=11,
                    workers=2, retries=1, on_worker_crash="retry",
                )
        assert run.cover_times == baseline.cover_times
        assert tel.counters.get("runner.worker_crashes", 0) >= 2
        assert tel.counters.get("runner.inline_fallbacks", 0) == 1

    def test_trial_timeout_retried_inline(self):
        baseline = self._serial()
        tel = Telemetry()
        with fault_plan("trial_stall:trial=1,count=1,seconds=1.5"):
            with session(tel):
                run = cover_time_trials(
                    self._workload(), "srw", trials=4, root_seed=11,
                    workers=1, retries=2, trial_timeout=0.3,
                )
        assert run.cover_times == baseline.cover_times
        assert tel.counters.get("runner.timeouts", 0) == 1
        assert tel.counters.get("runner.retries", 0) == 1

    def test_trial_timeout_exhaustion_raises(self):
        with fault_plan("trial_stall:trial=1,count=100,seconds=1.5"):
            with pytest.raises(ReproError, match="failed after"):
                cover_time_trials(
                    self._workload(), "srw", trials=2, root_seed=11,
                    workers=1, retries=1, trial_timeout=0.2,
                )

    def test_exhaustion_error_names_the_wall_clock_cause(self):
        with fault_plan("trial_stall:trial=0,count=100,seconds=1.5"):
            with pytest.raises(ReproError, match="wall-clock timeout") as err:
                run_trials(
                    self._workload(), "srw", trial_indices=[0],
                    root_seed=11, workers=1, retries=0, trial_timeout=0.2,
                )
        assert isinstance(err.value.__cause__, TrialTimeout)

    def test_knob_validation(self):
        with pytest.raises(ReproError, match="retries"):
            cover_time_trials(self._workload(), "srw", trials=1, root_seed=1, retries=-1)
        with pytest.raises(ReproError, match="trial_timeout"):
            cover_time_trials(
                self._workload(), "srw", trials=1, root_seed=1, trial_timeout=0.0
            )
        with pytest.raises(ReproError, match="on_worker_crash"):
            cover_time_trials(
                self._workload(), "srw", trials=1, root_seed=1, on_worker_crash="panic"
            )


class TestCheckpointRetry:
    def test_run_point_absorbs_transient_write_error(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path / "store")
        tel = Telemetry()
        with fault_plan("store_write:count=1"):
            with session(tel):
                result = run_point(spec, store=store)
        assert result.scheduled == spec.trials
        assert sorted(store.trials_for(spec)) == list(range(spec.trials))
        assert tel.counters["store.checkpoint_retries"] == 1

    def test_checkpoint_exhaustion_names_trial_and_spec(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path / "store")
        with fault_plan("store_write:count=100"):
            with pytest.raises(ReproError, match="could not checkpoint trial 0"):
                run_point(spec, store=store, retries=1)

    def test_torn_write_repaired_and_union_correct(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path / "store")
        tel = Telemetry()
        with fault_plan("store_write_torn:count=1"):
            with session(tel):
                result = run_point(spec, store=store)
        # The injected torn append was retried: full union, no quarantine,
        # and the reread matches an undisturbed store bit for bit.
        assert result.scheduled == spec.trials
        assert sorted(store.trials_for(spec)) == list(range(spec.trials))
        assert store.quarantined_count() == 0
        clean = ResultStore(tmp_path / "clean")
        run_point(spec, store=clean)
        assert {t: r.cover_time for t, r in store.trials_for(spec).items()} == {
            t: r.cover_time for t, r in clean.trials_for(spec).items()
        }


class TestTornTailStoreLevel:
    def test_torn_tail_tolerated_on_read_and_repaired_on_write(self, tmp_path):
        from repro.sim.runner import TrialOutcome

        spec = _spec()
        store = ResultStore(tmp_path / "store")
        store.record(spec, TrialOutcome(trial=0, steps=10, extras={}, wall_time=0.1))
        with fault_plan("store_write_torn:trial=1"):
            with pytest.raises(OSError):
                store.record(
                    spec, TrialOutcome(trial=1, steps=20, extras={}, wall_time=0.1)
                )
        shard = store._shard_path(spec.spec_hash)
        assert not shard.read_bytes().endswith(b"\n")
        # Cold read: the torn tail is skipped and counted, never quarantined.
        tel = Telemetry()
        cold = ResultStore(tmp_path / "store")
        with session(tel):
            assert sorted(cold.trials_for(spec)) == [0]
        assert tel.counters["store.truncated_tails"] == 1
        assert cold.quarantined_count() == 0
        # The next locked append repairs the tail before writing.
        store.record(spec, TrialOutcome(trial=2, steps=30, extras={}, wall_time=0.1))
        assert sorted(store.trials_for(spec)) == [0, 2]
        for line in shard.read_text().splitlines():
            json.loads(line)


def _subprocess_env():
    """A clean environment whose PYTHONPATH can import the src layout."""
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    env["PYTHONPATH"] = os.pathsep.join(filter(None, [src, env.get("PYTHONPATH", "")]))
    env.pop(FAULTS_ENV_VAR, None)
    return env


class TestConcurrentWriters:
    _WRITER = """
import sys
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import ResultStore
from repro.sim.runner import TrialOutcome

root, lo, hi = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
spec = ExperimentSpec(family="cycle", family_params={"n": 16}, walk="srw",
                      trials=64, root_seed=7)
store = ResultStore(root)
for trial in range(lo, hi):
    store.record(spec, TrialOutcome(trial=trial, steps=trial * 10,
                                    extras={"x": float(trial)}, wall_time=0.01))
"""

    def test_two_processes_interleave_without_torn_lines(self, tmp_path):
        root = tmp_path / "store"
        env = _subprocess_env()
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", self._WRITER, str(root), str(lo), str(hi)],
                env=env,
            )
            for lo, hi in [(0, 32), (32, 64)]
        ]
        assert [p.wait() for p in procs] == [0, 0]
        spec = ExperimentSpec(
            family="cycle", family_params={"n": 16}, walk="srw",
            trials=64, root_seed=7,
        )
        store = ResultStore(root)
        records = store.trials_for(spec)
        assert sorted(records) == list(range(64))
        assert all(records[t].cover_time == t * 10 for t in range(64))
        assert store.quarantined_count() == 0
        shard = store._shard_path(spec.spec_hash)
        lines = shard.read_text().splitlines()
        assert len(lines) == 64  # no duplicates, no torn fragments
        for line in lines:
            json.loads(line)


class TestKillResume:
    def _sweep_args(self, store):
        return [
            sys.executable, "-m", "repro", "sweep",
            "--family", "cycle", "--sizes", "40", "--walk", "srw",
            "--trials", "3", "--seed", "11", "--store", str(store),
        ]

    def test_kill9_between_checkpoint_and_ack_resumes_bit_identical(self, tmp_path):
        env = _subprocess_env()
        faulty = tmp_path / "faulty-store"
        env_kill = dict(env)
        env_kill[FAULTS_ENV_VAR] = "post_checkpoint_kill:trial=1"
        first = subprocess.run(
            self._sweep_args(faulty), env=env_kill, capture_output=True, text=True
        )
        assert first.returncode == KILL_EXIT_CODE, first.stderr
        resumed = subprocess.run(
            self._sweep_args(faulty), env=env, capture_output=True, text=True
        )
        assert resumed.returncode == 0, resumed.stderr
        # The killed run left completed cells behind; the resume must not
        # recompute them...
        assert "0 scheduled" not in first.stdout
        assert "3 scheduled" not in resumed.stdout
        # ...and the final table must equal a never-interrupted run's.
        clean_store = tmp_path / "clean-store"
        clean = subprocess.run(
            self._sweep_args(clean_store), env=env, capture_output=True, text=True
        )
        assert clean.returncode == 0, clean.stderr
        table = lambda out: out[out.index("\n") :]  # drop the N-scheduled line
        assert table(resumed.stdout) == table(clean.stdout)


class TestSweepUnderFaults:
    def test_sweep_completes_under_kill_and_enospc(self, tmp_path):
        """The ISSUE acceptance scenario, in-process: workers=2, retries=2."""
        sweep_spec = SweepSpec.deduped("chaos", [_spec(trials=6, root_seed=11)])
        token = tmp_path / "kill.tok"
        store = ResultStore(tmp_path / "store")
        plan = f"worker_kill:trial=2,token={token};store_write:count=1"
        tel = Telemetry()
        with fault_plan(plan):
            with session(tel):
                result = run_sweep(sweep_spec, store=store, workers=2, retries=2)
        assert result.scheduled == 6 and result.cached == 0
        assert tel.counters.get("runner.worker_crashes", 0) >= 1
        assert tel.counters.get("store.checkpoint_retries", 0) == 1
        # Warm re-run: everything cached, bit-identical aggregate.
        warm = run_sweep(sweep_spec, store=store)
        assert warm.scheduled == 0 and warm.cached == 6
        clean = run_sweep(sweep_spec, store=None)
        point, warm_point, clean_point = (
            result.points[0], warm.points[0], clean.points[0],
        )
        assert point.run.cover_times == clean_point.run.cover_times
        assert warm_point.run.cover_times == clean_point.run.cover_times
