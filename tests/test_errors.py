"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CoverTimeout,
    EvenDegreeError,
    GenerationError,
    GoodnessError,
    GraphError,
    NotConnectedError,
    ReproError,
    RuleError,
    SpectralError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            GraphError,
            NotConnectedError,
            EvenDegreeError,
            GenerationError,
            SpectralError,
            RuleError,
            GoodnessError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_not_connected_is_graph_error(self):
        assert issubclass(NotConnectedError, GraphError)

    def test_even_degree_is_graph_error(self):
        assert issubclass(EvenDegreeError, GraphError)

    def test_cover_timeout_carries_diagnostics(self):
        exc = CoverTimeout("ran out", steps=42, remaining=7)
        assert isinstance(exc, ReproError)
        assert exc.steps == 42
        assert exc.remaining == 7
        assert "ran out" in str(exc)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise RuleError("bad rule")
