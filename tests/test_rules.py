"""Tests for the rule A implementations."""

import pytest

from repro.core.eprocess import EdgeProcess
from repro.core.rules import (
    ALL_RULE_FACTORIES,
    AdversarialHomingRule,
    CallableRule,
    FarthestFirstRule,
    HighestLabelRule,
    LowestLabelRule,
    RoundRobinRule,
    UniformEdgeRule,
)
from repro.errors import RuleError
from repro.graphs.generators import cycle_graph, torus_grid
from repro.graphs.properties import bfs_distances
from repro.graphs.random_regular import random_connected_regular_graph


class _FakeProcess:
    """Minimal stand-in for rule unit tests."""

    def __init__(self, rng, graph=None, start=0):
        self.rng = rng
        self.graph = graph
        self.start = start


class TestUniform:
    def test_chooses_from_candidates(self, rng):
        rule = UniformEdgeRule()
        candidates = [(0, 1), (3, 2), (5, 4)]
        picks = {rule.choose(0, candidates, _FakeProcess(rng)) for _ in range(100)}
        assert picks == set(candidates)


class TestDeterministicRules:
    def test_lowest_label(self, rng):
        rule = LowestLabelRule()
        assert rule.choose(0, [(4, 1), (2, 9), (7, 0)], _FakeProcess(rng)) == (2, 9)

    def test_highest_label(self, rng):
        rule = HighestLabelRule()
        assert rule.choose(0, [(4, 1), (2, 9), (7, 0)], _FakeProcess(rng)) == (7, 0)

    def test_round_robin_cycles_per_vertex(self, rng):
        rule = RoundRobinRule()
        cands = [(0, 1), (1, 2), (2, 3)]
        picks = [rule.choose(5, cands, _FakeProcess(rng)) for _ in range(4)]
        assert picks == [(0, 1), (1, 2), (2, 3), (0, 1)]
        # independent counter for a different vertex
        assert rule.choose(6, cands, _FakeProcess(rng)) == (0, 1)


class TestDistanceGuidedRules:
    def test_homing_prefers_closer_to_start(self, rng):
        g = cycle_graph(8)
        proc = _FakeProcess(rng, graph=g, start=0)
        rule = AdversarialHomingRule()
        dist = bfs_distances(g, 0)
        # candidates leading to vertices 1 (dist 1) and 4 (dist 4)
        choice = rule.choose(3, [(9, 4), (1, 1)], proc)
        assert dist[choice[1]] == 1

    def test_farthest_prefers_far(self, rng):
        g = cycle_graph(8)
        proc = _FakeProcess(rng, graph=g, start=0)
        rule = FarthestFirstRule()
        choice = rule.choose(3, [(9, 4), (1, 1)], proc)
        assert choice == (9, 4)

    def test_distance_cache_reused(self, rng):
        g = cycle_graph(8)
        proc = _FakeProcess(rng, graph=g, start=0)
        rule = AdversarialHomingRule()
        rule.choose(3, [(9, 4), (1, 1)], proc)
        assert len(rule._cache) == 1
        rule.choose(2, [(9, 4), (1, 1)], proc)
        assert len(rule._cache) == 1


class TestCallableRule:
    def test_valid_function(self, rng):
        rule = CallableRule(lambda v, cands, p: cands[-1], name="last")
        assert rule.choose(0, [(1, 2), (3, 4)], _FakeProcess(rng)) == (3, 4)
        assert rule.name == "last"

    def test_invalid_return_raises(self, rng):
        rule = CallableRule(lambda v, cands, p: (99, 99))
        with pytest.raises(RuleError):
            rule.choose(0, [(1, 2)], _FakeProcess(rng))


class TestRulesInsideEProcess:
    @pytest.mark.parametrize("rule_name", sorted(ALL_RULE_FACTORIES))
    def test_every_rule_covers_even_regular_graph(self, rule_name, rng_factory):
        g = random_connected_regular_graph(50, 4, rng_factory(17))
        rule = ALL_RULE_FACTORIES[rule_name]()
        walk = EdgeProcess(g, 0, rng=rng_factory(18), rule=rule)
        steps = walk.run_until_vertex_cover()
        assert walk.vertices_covered
        assert steps >= g.n - 1

    def test_buggy_rule_raises_inside_process(self, rng):
        g = torus_grid(3, 3)
        walk = EdgeProcess(g, 0, rng=rng, rule=CallableRule(lambda v, c, p: (123, 456)))
        with pytest.raises(RuleError):
            walk.step()

    def test_rule_name_in_repr(self, rng):
        g = torus_grid(3, 3)
        walk = EdgeProcess(g, 0, rng=rng, rule=LowestLabelRule())
        assert "lowest-label" in repr(walk)
