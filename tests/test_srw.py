"""Tests for simple, lazy, and weighted random walks."""

import random
from collections import Counter

import pytest

from repro.errors import GraphError
from repro.graphs.generators import cycle_graph, star_graph
from repro.graphs.graph import Graph
from repro.walks.srw import LazyRandomWalk, SimpleRandomWalk, WeightedRandomWalk


class TestSimpleRandomWalk:
    def test_stationary_frequencies_proportional_to_degree(self, rng):
        # star: center has stationary mass 1/2
        g = star_graph(4)
        walk = SimpleRandomWalk(g, 0, rng=rng)
        counts = Counter()
        steps = 20_000
        for _ in range(steps):
            counts[walk.step()] += 1
        assert counts[0] / steps == pytest.approx(0.5, abs=0.02)

    def test_multigraph_transition_weighted_by_multiplicity(self, rng):
        # triangle with doubled edge (0,1): from 0, P(->1) = 2/3
        g = Graph(3, [(0, 1), (0, 1), (0, 2), (1, 2)])
        walk = SimpleRandomWalk(g, 0, rng=rng)
        to_one = 0
        trials = 9_000
        for _ in range(trials):
            walk.current = 0
            if walk.step() == 1:
                to_one += 1
        assert to_one / trials == pytest.approx(2 / 3, abs=0.02)

    def test_loop_transition_possible(self, rng):
        # from 0, both staying via the loop and moving to 1 must occur
        g = Graph(2, [(0, 0), (0, 1)])
        walk = SimpleRandomWalk(g, 0, rng=rng)
        seen = set()
        for _ in range(200):
            walk.current = 0
            seen.add(walk.step())
        assert seen == {0, 1}

    def test_cycle_cover_time_near_theory(self, rng):
        # E[C_V] on a cycle is n(n-1)/2.
        n = 20
        expected = n * (n - 1) / 2
        covers = []
        for _ in range(200):
            walk = SimpleRandomWalk(cycle_graph(n), 0, rng=rng)
            covers.append(walk.run_until_vertex_cover())
        mean = sum(covers) / len(covers)
        assert mean == pytest.approx(expected, rel=0.25)


class TestLazyRandomWalk:
    def test_stays_roughly_half_the_time(self, rng):
        g = cycle_graph(6)
        walk = LazyRandomWalk(g, 0, rng=rng)
        stays = 0
        steps = 10_000
        for _ in range(steps):
            before = walk.current
            if walk.step() == before:
                stays += 1
        assert stays / steps == pytest.approx(0.5, abs=0.03)

    def test_covers_bipartite_graph(self, rng):
        walk = LazyRandomWalk(cycle_graph(8), 0, rng=rng)
        assert walk.run_until_vertex_cover() > 0
        assert walk.vertices_covered


class TestWeightedRandomWalk:
    def test_weight_validation(self, rng):
        g = cycle_graph(4)
        with pytest.raises(GraphError):
            WeightedRandomWalk(g, 0, weights=[1.0], rng=rng)
        with pytest.raises(GraphError):
            WeightedRandomWalk(g, 0, weights=[1.0, 1.0, -2.0, 1.0], rng=rng)

    def test_uniform_weights_match_srw_marginals(self, rng):
        g = star_graph(3)
        walk = WeightedRandomWalk(g, 0, weights=[1.0] * g.m, rng=rng)
        counts = Counter()
        for _ in range(6_000):
            walk.current = 0
            counts[walk.step()] += 1
        for leaf in (1, 2, 3):
            assert counts[leaf] / 6_000 == pytest.approx(1 / 3, abs=0.03)

    def test_heavy_edge_dominates(self, rng):
        # path 0-1-2 with w(0,1)=99, w(1,2)=1: from 1, mostly to 0
        g = Graph(3, [(0, 1), (1, 2)])
        walk = WeightedRandomWalk(g, 1, weights=[99.0, 1.0], rng=rng)
        to_zero = 0
        trials = 4_000
        for _ in range(trials):
            walk.current = 1
            if walk.step() == 0:
                to_zero += 1
        assert to_zero / trials == pytest.approx(0.99, abs=0.02)

    def test_covers(self, rng):
        g = cycle_graph(7)
        walk = WeightedRandomWalk(g, 0, weights=[1.0 + 0.1 * i for i in range(7)], rng=rng)
        walk.run_until_vertex_cover()
        assert walk.vertices_covered

    def test_radzik_lower_bound_respected(self, rng):
        # Theorem 5: no weighting beats (n/4) ln(n/2) on average.
        from repro.core.bounds import radzik_lower_bound

        n = 16
        g = cycle_graph(n)
        covers = []
        for _ in range(120):
            walk = WeightedRandomWalk(g, 0, weights=[1.0] * n, rng=rng)
            covers.append(walk.run_until_vertex_cover())
        assert sum(covers) / len(covers) >= radzik_lower_bound(n)


class TestScratchReuse:
    def test_weighted_cumulative_table_shared_across_trials(self):
        # Same (graph, weights): the cumulative table is built once and
        # cached in the graph's scratch memo; the runner's repeated-trials
        # shape reuses it instead of re-accumulating 2m floats per walk.
        g = cycle_graph(9)
        weights = [1.0 + 0.5 * i for i in range(9)]
        a = WeightedRandomWalk(g, 0, weights=weights, rng=random.Random(1))
        b = WeightedRandomWalk(g, 0, weights=weights, rng=random.Random(2))
        assert a._cumulative is b._cumulative
        # Different weights get their own table.
        c = WeightedRandomWalk(g, 0, weights=[1.0] * 9, rng=random.Random(3))
        assert c._cumulative is not a._cumulative

    def test_walks_share_the_graph_incidence_table(self):
        # The base class keeps the graph's immutable incidence structure
        # instead of copying it per walk (the allocation the fleet work
        # exposed in LazyRandomWalk/WeightedRandomWalk trial loops).
        g = cycle_graph(9)
        lazy = LazyRandomWalk(g, 0, rng=random.Random(1))
        weighted = WeightedRandomWalk(g, 0, weights=[1.0] * 9, rng=random.Random(2))
        assert lazy._incidence is g.incidence_table()
        assert weighted._incidence is g.incidence_table()
