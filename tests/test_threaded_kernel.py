"""Free-threaded stress harness: concurrent fleets over shared frozen tiles.

The fused kernel is called through ctypes, which releases the GIL for the
duration of each ``repro_fused_block`` call — so several fleets stepping
from a :class:`~concurrent.futures.ThreadPoolExecutor` genuinely execute
the C kernel *concurrently*, all reading the same cached CSR tiles
(``Graph.scratch_cache()``), incidence tables, and packed bitmask tables.
That sharing is safe only because every tile is frozen at creation
(``setflags(write=False)`` — lint rule R6); this suite is the runtime
counterpart of that static contract:

* **Bit-identity**: each fleet, driven from its own thread, must finish in
  exactly the end-state of an identically-seeded fleet run serially —
  cover times, final positions, generator states, first-visit tables.
  Any cross-thread mutation of shared state would perturb at least one
  lane's replay.
* **Zero data races**: under ``REPRO_SANITIZE=thread`` (see ``setup.py``)
  the kernel is compiled with ``-fsanitize=thread`` and CI runs this file
  with ``TSAN_OPTIONS=halt_on_error=1`` — a single racy access aborts the
  run.  The suite also passes on plain and numpy-only builds, where it
  still exercises the frozen-tile sharing through the fallback path.

Thread count deliberately exceeds the fleet count on some tests so the
pool reuses threads across fleets, and the cold-cache tests make several
threads *build* the shared tiles at once (last write wins; contents are
identical and frozen, so the race is benign by construction).
"""

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import FleetEdgeProcess, FleetSRW, FleetVProcess, native
from repro.graphs.graph import Graph
from repro.graphs.random_regular import random_connected_regular_graph

THREADS = 4
FLEETS = 6  # > THREADS: forces thread reuse across fleets
LANES = 5

FLEET_CLASSES = [FleetSRW, FleetEdgeProcess, FleetVProcess]


def _regular(n=120, d=4, seed=7):
    return random_connected_regular_graph(n, d, random.Random(seed))


def _irregular(n=90, seed=11):
    """Connected non-regular graph: exercises the general kernel path."""
    rng = random.Random(seed)
    edges = [(i, i + 1) for i in range(n - 1)]
    seen = set(edges)
    for _ in range(2 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and (u, v) not in seen and (v, u) not in seen:
            seen.add((u, v))
            edges.append((u, v))
    return Graph(n, edges, name=f"irregular-{n}")


def _build(cls, graph, fleet_idx):
    """One fleet plus its rngs, deterministically seeded by ``fleet_idx``."""
    starts = [
        random.Random(100 * fleet_idx + k).randrange(graph.n) for k in range(LANES)
    ]
    rngs = [random.Random(9_000 + 100 * fleet_idx + k) for k in range(LANES)]
    kwargs = {"record_phases": False} if cls is FleetEdgeProcess else {}
    return cls([graph] * LANES, starts, rngs, **kwargs), rngs


def _drive(cls, graph, fleet_idx, target):
    """Run one fleet to cover; returns its complete observable end-state."""
    fleet, rngs = _build(cls, graph, fleet_idx)
    cover = fleet.run_until_cover(target=target)
    state = {
        "cover": list(cover),
        "positions": list(fleet.positions),
        "rng": [r.getstate() for r in rngs],
    }
    if isinstance(fleet, FleetSRW):
        state["first_visit"] = [fleet.first_visit_time(k) for k in range(fleet.K)]
    return state


def _serial_vs_threaded(cls, graph_factory, target):
    """End-states of FLEETS serial runs vs. the same fleets threaded.

    Distinct graph objects per pass (same seed, same topology) so the
    threaded pass populates its shared caches itself — from several
    threads at once — rather than inheriting warm tiles.
    """
    serial_graph = graph_factory()
    serial = [_drive(cls, serial_graph, i, target) for i in range(FLEETS)]

    threaded_graph = graph_factory()
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [
            pool.submit(_drive, cls, threaded_graph, i, target)
            for i in range(FLEETS)
        ]
        threaded = [f.result() for f in futures]
    return serial, threaded, threaded_graph


def _assert_frozen_tiles(graph):
    """Every array tile cached on the shared graph must be read-only."""
    import numpy as np

    def _flat(obj):
        if isinstance(obj, np.ndarray):
            yield obj
        elif isinstance(obj, (tuple, list)):
            for item in obj:
                yield from _flat(item)

    frozen = 0
    for key, value in graph.scratch_cache().items():
        for arr in _flat(value):
            assert not arr.flags.writeable, f"writable shared tile under {key!r}"
            frozen += 1
    assert frozen > 0, "expected the run to cache shared tiles"


class TestThreadedFleets:
    @pytest.mark.parametrize("cls", FLEET_CLASSES)
    def test_regular_graph_bit_identical(self, cls):
        serial, threaded, graph = _serial_vs_threaded(cls, _regular, "vertices")
        assert threaded == serial
        _assert_frozen_tiles(graph)

    def test_edge_cover_bit_identical(self):
        serial, threaded, graph = _serial_vs_threaded(
            FleetSRW, _regular, "edges"
        )
        assert threaded == serial
        _assert_frozen_tiles(graph)

    def test_irregular_graph_bit_identical(self):
        serial, threaded, graph = _serial_vs_threaded(
            FleetSRW, _irregular, "vertices"
        )
        assert threaded == serial
        _assert_frozen_tiles(graph)

    def test_threaded_matches_numpy_reference(self, monkeypatch):
        """Threaded native end-states equal the single-threaded numpy path.

        Closes the loop across *both* axes at once (threading and kernel):
        if the native kernel raced anywhere, matching the numpy fallback
        bit-for-bit from a threaded run would require the race to be
        exactly invisible — TSan catches the rest.
        """
        serial_graph = _regular(seed=23)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native._reset_probe_for_testing()
        try:
            reference = [
                _drive(FleetSRW, serial_graph, i, "vertices") for i in range(FLEETS)
            ]
        finally:
            monkeypatch.delenv("REPRO_NATIVE")
            native._reset_probe_for_testing()

        threaded_graph = _regular(seed=23)
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            futures = [
                pool.submit(_drive, FleetSRW, threaded_graph, i, "vertices")
                for i in range(FLEETS)
            ]
            threaded = [f.result() for f in futures]
        assert threaded == reference

    def test_repeated_threaded_runs_are_stable(self):
        """Two threaded passes over one warm shared graph agree exactly.

        Same graph object both times: the second pass consumes tiles the
        first pass cached, catching any mutation the first pass leaked
        into shared state.
        """
        graph = _regular(seed=31)
        results = []
        for _ in range(2):
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                futures = [
                    pool.submit(_drive, FleetSRW, graph, i, "vertices")
                    for i in range(FLEETS)
                ]
                results.append([f.result() for f in futures])
        assert results[0] == results[1]
        _assert_frozen_tiles(graph)


class TestSharedTileContract:
    def test_shared_tiles_reject_writes(self):
        """Frozen tiles raise on mutation — the R6 contract at runtime."""
        import numpy as np

        graph = _regular(seed=5)
        fleet, _ = _build(FleetSRW, graph, 0)
        fleet.run_until_cover(target="vertices")
        arrays = [
            arr
            for value in graph.scratch_cache().values()
            for arr in (value if isinstance(value, tuple) else (value,))
            if isinstance(arr, np.ndarray)
        ]
        assert arrays
        for arr in arrays:
            with pytest.raises((ValueError, RuntimeError)):
                arr[...] = 0

    @pytest.mark.skipif(not native.available(), reason="native kernel not built")
    def test_native_kernel_in_use(self):
        """The harness actually exercises the fused kernel when built."""
        graph = _regular(seed=3)
        fleet, _ = _build(FleetSRW, graph, 0)
        assert fleet._native_setup() is not None
