"""Property-based tests (hypothesis) for the graph substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.cycle_space import cycle_space_basis, cycle_space_dimension, is_even_edge_set
from repro.graphs.properties import connected_components, girth, is_connected
from repro.graphs.transform import contract, subdivide
from tests.strategies import connected_even_multigraphs, simple_connected_graphs


@settings(max_examples=60, deadline=None)
@given(graph=simple_connected_graphs())
def test_handshake_lemma(graph):
    assert sum(graph.degrees()) == 2 * graph.m


@settings(max_examples=60, deadline=None)
@given(graph=connected_even_multigraphs())
def test_even_strategy_delivers_even_connected(graph):
    assert graph.has_even_degrees()
    assert is_connected(graph)


@settings(max_examples=60, deadline=None)
@given(graph=simple_connected_graphs())
def test_cycle_space_dimension_matches_basis(graph):
    basis = cycle_space_basis(graph)
    assert len(basis) == cycle_space_dimension(graph)
    for vec in basis:
        assert is_even_edge_set(graph, vec)


@settings(max_examples=60, deadline=None)
@given(graph=connected_even_multigraphs())
def test_even_graph_contains_cycle(graph):
    # an even-degree connected graph with >= 1 edge always contains a cycle
    g = girth(graph)
    assert not math.isinf(g)
    assert 1 <= g <= graph.n


@settings(max_examples=50, deadline=None)
@given(graph=simple_connected_graphs(), data=st.data())
def test_contraction_invariants(graph, data):
    size = data.draw(st.integers(min_value=1, max_value=max(1, graph.n - 1)))
    members = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.n - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    result = contract(graph, members)
    # m preserved, total degree preserved, gamma degree = d(S)
    assert result.graph.m == graph.m
    assert sum(result.graph.degrees()) == sum(graph.degrees())
    d_s = sum(graph.degree(v) for v in set(members))
    assert result.graph.degree(result.gamma) == d_s


@settings(max_examples=50, deadline=None)
@given(graph=connected_even_multigraphs(), data=st.data())
def test_subdivision_preserves_even_degrees_and_connectivity(graph, data):
    if graph.m == 0:
        return
    k = data.draw(st.integers(min_value=1, max_value=graph.m))
    edge_ids = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.m - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    result = subdivide(graph, edge_ids)
    assert result.graph.has_even_degrees()
    assert is_connected(result.graph)
    assert result.graph.m == graph.m + len(set(edge_ids))


@settings(max_examples=60, deadline=None)
@given(graph=simple_connected_graphs())
def test_components_partition_vertices(graph):
    comps = connected_components(graph)
    seen = [v for comp in comps for v in comp]
    assert sorted(seen) == list(range(graph.n))
