"""Tests for the persistent per-trial result store."""

import json

import pytest

from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import STORE_SCHEMA_VERSION, ResultStore
from repro.sim.runner import TrialOutcome


def _spec(**overrides):
    base = dict(
        family="cycle",
        family_params={"n": 16},
        walk="srw",
        trials=3,
        root_seed=7,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def _outcome(trial, steps=100, extras=None, wall=0.5):
    return TrialOutcome(trial=trial, steps=steps, extras=extras or {}, wall_time=wall)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRecordAndRead:
    def test_fresh_store_is_empty(self, store):
        assert store.trials_for(_spec()) == {}
        assert store.missing_trials(_spec()) == [0, 1, 2]

    def test_round_trip(self, store):
        spec = _spec()
        store.record(spec, _outcome(0, steps=42, extras={"red": 3.0}))
        store.record(spec, _outcome(2, steps=57))
        records = store.trials_for(spec)
        assert sorted(records) == [0, 2]
        assert records[0].cover_time == 42
        assert records[0].extras == {"red": 3.0}
        assert records[2].cover_time == 57
        assert store.missing_trials(spec) == [1]

    def test_float_extras_roundtrip_exactly(self, store):
        spec = _spec()
        value = 0.1 + 0.2  # not representable; repr round-trips exactly
        store.record(spec, _outcome(0, extras={"x": value}))
        assert store.trials_for(spec)[0].extras["x"] == value

    def test_specs_keyed_by_identity_not_execution_knobs(self, store):
        spec = _spec()
        store.record(spec, _outcome(0))
        assert 0 in store.trials_for(spec.with_trials(50))
        assert 0 in store.trials_for(spec.with_engine("array"))
        assert store.trials_for(_spec(root_seed=8)) == {}

    def test_first_record_wins_on_duplicates(self, store):
        spec = _spec()
        store.record(spec, _outcome(0, steps=10))
        store.record(spec, _outcome(0, steps=99))
        assert store.trials_for(spec)[0].cover_time == 10

    def test_clear_trials_supersedes_cells(self, store):
        spec = _spec()
        store.record(spec, _outcome(0, steps=10))
        store.record(spec, _outcome(1, steps=20))
        assert store.clear_trials(spec, [0]) == 1
        store.record(spec, _outcome(0, steps=77))
        records = store.trials_for(spec)
        assert records[0].cover_time == 77
        assert records[1].cover_time == 20
        shard = store._shard_path(spec.spec_hash)
        assert len([l for l in shard.read_text().splitlines() if l.strip()]) == 2

    def test_clear_trials_defaults_to_spec_range(self, store):
        spec = _spec()  # trials=3
        for t in range(4):
            store.record(spec, _outcome(t))
        assert store.clear_trials(spec) == 3  # cells 0..2; trial 3 kept
        assert sorted(store.trials_for(spec)) == [3]
        assert store.clear_trials(_spec(root_seed=99)) == 0  # no shard

    def test_trials_survive_store_reopen(self, store):
        spec = _spec()
        store.record(spec, _outcome(1, steps=23))
        reopened = ResultStore(store.root)
        assert reopened.trials_for(spec)[1].cover_time == 23


class TestQuarantine:
    def _shard(self, store, spec):
        store.record(spec, _outcome(0))
        return store._shard_path(spec.spec_hash)

    def test_corrupted_line_quarantined_not_crashed(self, store):
        spec = _spec()
        shard = self._shard(store, spec)
        with shard.open("a") as fh:
            fh.write("{not json at all\n")
        records = store.trials_for(spec)  # must not raise
        assert sorted(records) == [0]
        assert store.quarantined_count(spec) == 1
        # reads never touch the shard (concurrent-writer safety): the bad
        # line is still there, but re-reads dedupe against the quarantine
        assert "{not json at all" in shard.read_text()
        store.trials_for(spec)
        assert store.quarantined_count(spec) == 1
        # gc is what compacts the shard
        store.gc()
        assert "{not json at all" not in shard.read_text()

    def test_schema_version_mismatch_quarantined(self, store):
        spec = _spec()
        shard = self._shard(store, spec)
        line = json.loads(shard.read_text().splitlines()[0])
        line["trial"] = 1
        line["schema"] = STORE_SCHEMA_VERSION + 1
        with shard.open("a") as fh:
            fh.write(json.dumps(line) + "\n")
        records = store.trials_for(spec)
        assert sorted(records) == [0]
        assert store.quarantined_count(spec) == 1

    def test_wrong_hash_and_bad_fields_quarantined(self, store):
        spec = _spec()
        shard = self._shard(store, spec)
        good = json.loads(shard.read_text().splitlines()[0])
        bad_hash = dict(good, trial=1, spec_hash="0" * 16)
        bad_trial = dict(good, trial=-4)
        missing_field = {k: v for k, v in good.items() if k != "cover_time"}
        with shard.open("a") as fh:
            for obj in (bad_hash, bad_trial, missing_field):
                fh.write(json.dumps(obj) + "\n")
        assert sorted(store.trials_for(spec)) == [0]
        assert store.quarantined_count(spec) == 3

    def test_non_numeric_extras_quarantined(self, store):
        spec = _spec()
        shard = self._shard(store, spec)
        good = json.loads(shard.read_text().splitlines()[0])
        bad_extras = dict(good, trial=1, extras={"x": "not-a-number"})
        bad_wall = dict(good, trial=2, wall_time="slow")
        with shard.open("a") as fh:
            fh.write(json.dumps(bad_extras) + "\n")
            fh.write(json.dumps(bad_wall) + "\n")
        assert sorted(store.trials_for(spec)) == [0]  # must not raise
        assert store.quarantined_count(spec) == 2

    def test_quarantine_records_reasons(self, store):
        spec = _spec()
        shard = self._shard(store, spec)
        with shard.open("a") as fh:
            fh.write("garbage\n")
        store.trials_for(spec)
        entry = json.loads(
            store._quarantine_path(spec.spec_hash).read_text().splitlines()[0]
        )
        assert "reason" in entry and "line" in entry
        assert entry["line"] == "garbage"


class TestInventoryAndGc:
    def test_entries_describe_contents(self, store):
        spec = _spec()
        store.record(spec, _outcome(0, wall=1.5))
        store.record(spec, _outcome(1, wall=0.5))
        (entry,) = list(store.entries())
        assert entry.spec_hash == spec.spec_hash
        assert entry.trials_cached == 2
        assert entry.total_wall_time == 2.0
        assert "cycle(n=16)" in entry.describe()

    def test_gc_dedupes_and_purges(self, store):
        spec = _spec()
        store.record(spec, _outcome(0, steps=10))
        store.record(spec, _outcome(0, steps=99))  # duplicate cell
        shard = store._shard_path(spec.spec_hash)
        with shard.open("a") as fh:
            fh.write("corrupt\n")
        stats = store.gc()
        assert stats.specs_kept == 1
        assert stats.records_kept == 1
        assert stats.duplicates_dropped == 1
        assert stats.quarantined_purged == 1  # the corrupt line, found and purged
        assert store.quarantined_count() == 0
        assert store.trials_for(spec)[0].cover_time == 10

    def test_gc_removes_orphan_shards(self, store):
        spec = _spec()
        store.record(spec, _outcome(0))
        shard = store._shard_path(spec.spec_hash)
        shard.write_text("junk only\n")
        stats = store.gc()
        assert stats.specs_kept == 0
        assert stats.orphan_shards_removed == 1
        assert not shard.exists()
        assert list(store.entries()) == []

    def test_gc_on_empty_store(self, store):
        stats = store.gc()
        assert stats.specs_kept == 0
        assert stats.records_kept == 0
