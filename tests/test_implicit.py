"""The implicit neighbor-oracle backend: contracts, engines, fleets.

Three layers of guarantees:

* **Slot-order contract** — for every implicit family,
  ``kth_neighbor(v, k)`` is exactly ``materialize().incidence(v)[k][1]``,
  and ascending canonical-dart (``edge_slot``) order is exactly the
  materialized edge-id order.  Everything else rests on this.
* **Bit-identity** — each oracle walk engine (per-trial and fleet)
  replays the materialized reference walk's draw sequence exactly: same
  trajectories, cover times, first-visit tables, and RNG end-states.
* **Refusals** — walks needing per-edge state the oracle cannot provide
  raise :class:`~repro.errors.ReproError` naming the walk and backend,
  never a silent materialization.
"""

import pickle
import random

import pytest
from hypothesis import given, settings

from repro.core.eprocess import EdgeProcess
from repro.engine import NAMED_WALK_FACTORIES, OracleEdgeProcess, OracleSRW, OracleVProcess
from repro.engine.base import VisitedSet
from repro.engine.fleet import FleetSRW, fleet_supported
from repro.errors import CoverTimeout, GraphError, ReproError
from repro.graphs import (
    ImplicitHashedRegular,
    ImplicitHypercube,
    ImplicitTorus,
    is_implicit,
)
from repro.graphs.properties import is_connected
from repro.sim.runner import cover_time_trials
from repro.walks.choice import UnvisitedVertexWalk
from repro.walks.srw import SimpleRandomWalk
from tests.strategies import implicit_graphs


def _connected_hashed(n, d):
    for key in range(64):
        g = ImplicitHashedRegular(n, d, key)
        if is_connected(g.materialize()):
            return g
    raise AssertionError(f"no connected hashed graph at n={n}, d={d}")


# Small members of all three families; the hashed ones include odd degree
# (d=3) and a dense one likely to carry loops/parallel edges (d=6, n=20).
FAMILIES = [
    ImplicitHypercube(4),
    ImplicitTorus(4, 6),
    _connected_hashed(40, 4),
    _connected_hashed(30, 3),
    _connected_hashed(20, 6),
]


@pytest.fixture(params=FAMILIES, ids=lambda g: g.name)
def family(request):
    return request.param


class TestSlotOrderContract:
    def test_kth_neighbor_matches_materialized_incidence(self, family):
        mat = family.materialize()
        assert mat.n == family.n and mat.m == family.m
        for v in range(family.n):
            inc = mat.incidence(v)
            assert len(inc) == family.degree(v)
            for k, (_, w) in enumerate(inc):
                assert family.kth_neighbor(v, k) == w

    def test_canonical_dart_rank_is_edge_id(self, family):
        mat = family.materialize()
        darts = {}
        for v in range(family.n):
            for k, (eid, _) in enumerate(mat.incidence(v)):
                dart = family.edge_slot(v, k)
                darts.setdefault(eid, set()).add(dart)
        # one canonical dart per edge, ranked in edge-id order
        canon = [min(ds) for eid, ds in sorted(darts.items())]
        assert canon == sorted(canon)
        assert len(set(canon)) == mat.m

    def test_vectorized_oracles_match_scalar(self, family):
        import numpy as np

        rng = random.Random(5)
        vs = np.array([rng.randrange(family.n) for _ in range(200)], dtype=np.int64)
        ks = np.array(
            [rng.randrange(family.degree(int(v))) for v in vs], dtype=np.int64
        )
        nbrs = family.kth_neighbors(vs, ks)
        slots = family.edge_slots(vs, ks)
        for v, k, w, s in zip(vs.tolist(), ks.tolist(), nbrs.tolist(), slots.tolist()):
            assert family.kth_neighbor(v, k) == w
            assert family.edge_slot(v, k) == s

    def test_reverse_slot_round_trips(self, family):
        for v in range(min(family.n, 30)):
            for k in range(family.degree(v)):
                w = family.kth_neighbor(v, k)
                rk = family.reverse_slot(v, k)
                assert family.kth_neighbor(w, rk) == v
                # both directions name one edge
                assert family.edge_slot(w, rk) == family.edge_slot(v, k)

    def test_pickle_is_tiny_and_faithful(self, family):
        payload = pickle.dumps(family)
        assert len(payload) < 200
        clone = pickle.loads(payload)
        assert clone == family
        for v in (0, family.n - 1):
            for k in range(family.degree(v)):
                assert clone.kth_neighbor(v, k) == family.kth_neighbor(v, k)

    def test_describe_names_size_without_materializing(self):
        g = ImplicitHypercube(24)  # 16.7M vertices; must stay O(1)
        assert "16777216" in g.describe()
        assert g.degree(0) == 24
        with pytest.raises(GraphError):
            g.degree(1 << 24)


class TestConstruction:
    def test_hashed_rejects_odd_dart_count(self):
        with pytest.raises(GraphError):
            ImplicitHashedRegular(3, 3, key=1)

    def test_torus_rejects_small_sides(self):
        with pytest.raises(GraphError):
            ImplicitTorus(2, 5)

    def test_is_implicit(self, family):
        assert is_implicit(family)
        assert not is_implicit(family.materialize())


def _reference_walk(walk, graph, rng):
    if walk == "srw":
        return SimpleRandomWalk(graph, 0, rng=rng, track_edges=True)
    if walk == "eprocess":
        return EdgeProcess(graph, 0, rng=rng, record_phases=False)
    return UnvisitedVertexWalk(graph, 0, rng=rng, track_edges=True)


def _oracle_walk(walk, graph, rng):
    if walk == "srw":
        return OracleSRW(graph, 0, rng=rng, track_edges=True)
    if walk == "eprocess":
        return OracleEdgeProcess(graph, 0, rng=rng, record_phases=False)
    return OracleVProcess(graph, 0, rng=rng, track_edges=True)


class TestBitIdentity:
    """Oracle engines vs materialized reference walks, per family x walk."""

    @pytest.mark.parametrize("walk", ["srw", "eprocess", "vprocess"])
    def test_trajectory_and_rng_end_state(self, family, walk):
        rng_o = random.Random(11)
        rng_r = random.Random(11)
        oracle = _oracle_walk(walk, family, rng_o)
        ref = _reference_walk(walk, family.materialize(), rng_r)
        for _ in range(300):
            assert oracle.step() == ref.step()
            assert oracle.current == ref.current
        assert rng_o.getstate() == rng_r.getstate()
        assert oracle.num_visited_vertices == ref.num_visited_vertices
        assert oracle.num_visited_edges == ref.num_visited_edges

    @pytest.mark.parametrize("walk", ["srw", "eprocess", "vprocess"])
    @pytest.mark.parametrize("target", ["vertices", "edges"])
    def test_cover_runs_match(self, family, walk, target):
        rng_o = random.Random(23)
        rng_r = random.Random(23)
        oracle = _oracle_walk(walk, family, rng_o)
        ref = _reference_walk(walk, family.materialize(), rng_r)
        if target == "vertices":
            c_o = oracle.run_until_vertex_cover()
            c_r = ref.run_until_vertex_cover()
        else:
            c_o = oracle.run_until_edge_cover()
            c_r = ref.run_until_edge_cover()
        assert c_o == c_r
        assert rng_o.getstate() == rng_r.getstate()
        assert list(oracle.first_visit_time) == list(ref.first_visit_time)

    @pytest.mark.parametrize("engine", ["reference", "array"])
    def test_registry_dispatch_is_bit_identical(self, family, engine):
        # The registry routes implicit graphs to the oracle engines under
        # every engine name; numbers must match the materialized walk.
        rng_o = random.Random(31)
        rng_r = random.Random(31)
        factory = NAMED_WALK_FACTORIES["srw"][engine]
        oracle = factory(family, 0, rng_o)
        ref = factory(family.materialize(), 0, rng_r)
        assert oracle.run_until_vertex_cover() == ref.run_until_vertex_cover()
        assert rng_o.getstate() == rng_r.getstate()

    def test_edge_first_visit_darts_match_reference(self, family):
        mat = family.materialize()
        rng_o = random.Random(43)
        rng_r = random.Random(43)
        oracle = OracleSRW(family, 0, rng=rng_o, track_edges=True)
        ref = SimpleRandomWalk(mat, 0, rng=rng_r, track_edges=True)
        oracle.run_until_edge_cover()
        ref.run_until_edge_cover()
        dart_of_edge = {}
        for v in range(family.n):
            for k, (eid, _) in enumerate(mat.incidence(v)):
                d = family.edge_slot(v, k)
                if eid not in dart_of_edge or d < dart_of_edge[eid]:
                    dart_of_edge[eid] = d
        got = [oracle.first_edge_visit_dart_time[dart_of_edge[e]] for e in range(mat.m)]
        assert got == list(ref.first_edge_visit_time)

    def test_eprocess_red_blue_split_matches(self, family):
        if family.regularity() % 2:
            pytest.skip("odd degree: red/blue split compared on even families")
        rng_o = random.Random(53)
        rng_r = random.Random(53)
        oracle = OracleEdgeProcess(family, 0, rng=rng_o)
        ref = EdgeProcess(family.materialize(), 0, rng=rng_r)
        oracle.run_until_edge_cover()
        ref.run_until_edge_cover()
        assert oracle.blue_steps == ref.blue_steps
        assert oracle.red_steps == ref.red_steps
        assert oracle.phase_marks == ref.phase_marks


class TestFleet:
    K = 9  # above the regular kernel's hand-off threshold

    @pytest.mark.parametrize("target", ["vertices", "edges"])
    def test_fleet_matches_reference_lanes(self, family, target):
        starts = [(3 * k) % family.n for k in range(self.K)]
        rngs_f = [random.Random(61 + k) for k in range(self.K)]
        rngs_r = [random.Random(61 + k) for k in range(self.K)]
        fleet = FleetSRW([family] * self.K, starts, rngs_f)
        covers = fleet.run_until_cover(target=target)
        mat = family.materialize()
        for k in range(self.K):
            ref = SimpleRandomWalk(mat, starts[k], rng=rngs_r[k], track_edges=True)
            if target == "vertices":
                expect = ref.run_until_vertex_cover()
            else:
                expect = ref.run_until_edge_cover()
            assert covers[k] == expect
            assert rngs_f[k].getstate() == rngs_r[k].getstate()
            assert fleet.positions[k] == ref.current

    def test_fleet_timeout_syncs_live_lanes(self):
        g = ImplicitHypercube(6)
        rngs_f = [random.Random(71 + k) for k in range(self.K)]
        rngs_r = [random.Random(71 + k) for k in range(self.K)]
        fleet = FleetSRW([g] * self.K, [0] * self.K, rngs_f, block_steps=32)
        with pytest.raises(CoverTimeout):
            fleet.run_until_cover(target="vertices", max_steps=64)
        mat = g.materialize()
        for k in range(self.K):
            ref = SimpleRandomWalk(mat, 0, rng=rngs_r[k])
            with pytest.raises(CoverTimeout):
                ref.run_until_vertex_cover(max_steps=64)
            assert rngs_f[k].getstate() == rngs_r[k].getstate()

    def test_fleet_refuses_mixed_backends(self):
        g = ImplicitHypercube(3)
        rngs = [random.Random(1), random.Random(2)]
        ok, reason = fleet_supported([g, g.materialize()], rngs, "srw")
        assert not ok and "lane 1" in reason

    def test_fleet_refuses_distinct_implicit_graphs(self):
        rngs = [random.Random(1), random.Random(2)]
        ok, reason = fleet_supported(
            [ImplicitHypercube(3), ImplicitHypercube(4)], rngs, "srw"
        )
        assert not ok and "share one graph" in reason

    @pytest.mark.parametrize("walk", ["eprocess", "vprocess"])
    def test_fleet_refuses_oracle_unvisited_walks(self, walk):
        g = ImplicitTorus(3, 3)
        rngs = [random.Random(1), random.Random(2)]
        ok, reason = fleet_supported([g, g], rngs, walk)
        assert not ok
        assert "oracle" in reason and walk in reason


class TestRefusals:
    @pytest.mark.parametrize(
        "walk,state",
        [
            ("rotor", "rotor table"),
            ("rwc2", "visit counts"),
            ("least-used", "traversal counts"),
            ("oldest-first", "last-use ages"),
        ],
    )
    def test_per_edge_state_walks_refuse_by_name(self, walk, state):
        g = ImplicitTorus(3, 3)
        for engine, factory in NAMED_WALK_FACTORIES[walk].items():
            with pytest.raises(ReproError, match=state):
                factory(g, 0, random.Random(0))

    def test_eprocess_refuses_degree_above_mask_width(self):
        g = ImplicitHashedRegular(66, 66, key=0)
        with pytest.raises(ReproError, match="64"):
            OracleEdgeProcess(g, 0, rng=random.Random(0))

    def test_eprocess_refuses_non_uniform_rule(self):
        from repro.core.rules import UniformEdgeRule

        class OtherRule(UniformEdgeRule):
            pass

        g = ImplicitHypercube(3)
        OracleEdgeProcess(g, 0, rng=random.Random(0), rule=UniformEdgeRule())
        with pytest.raises(ReproError):
            OracleEdgeProcess(g, 0, rng=random.Random(0), rule=OtherRule())

    def test_start_out_of_range_names_span(self):
        with pytest.raises(GraphError, match=r"0\.\.7"):
            OracleSRW(ImplicitHypercube(3), 8, rng=random.Random(0))


class TestRunnerIntegration:
    def test_workers_ship_implicit_graphs_bit_identically(self):
        g = ImplicitHypercube(6)
        serial = cover_time_trials(
            workload=g, walk_factory="srw", trials=4, root_seed=13, engine="array"
        )
        pooled = cover_time_trials(
            workload=g, walk_factory="srw", trials=4, root_seed=13,
            engine="array", workers=2,
        )
        assert serial.cover_times == pooled.cover_times

    def test_fleet_engine_matches_reference_via_runner(self):
        g = ImplicitTorus(4, 4)
        ref = cover_time_trials(
            workload=g, walk_factory="srw", trials=8, root_seed=17
        )
        fleet = cover_time_trials(
            workload=g, walk_factory="srw", trials=8, root_seed=17, engine="fleet"
        )
        assert ref.cover_times == fleet.cover_times


class TestVisitedSet:
    def test_scalar_and_vector_paths_agree(self):
        import numpy as np

        bits = VisitedSet(200)
        assert bits.add(7) and not bits.add(7)
        assert bits.test(7) and not bits.test(8)
        idx = np.array([7, 8, 9, 8, 199], dtype=np.int64)
        assert bits.test_many(idx).tolist() == [1, 0, 0, 0, 0]
        fresh = bits.fresh_indices(idx)
        assert fresh.tolist() == [1, 2, 3, 4]
        added = bits.set_many(idx)
        assert added == 3  # 8, 9, 199 (8 deduped)
        assert bits.count == 4

    def test_word_checkout_round_trip(self):
        bits = VisitedSet(100)
        words = bits.checkout_words()
        words[0] |= 1 << 5
        bits.checkin_words(words, added=1)
        assert bits.test(5) and bits.count == 1


@settings(max_examples=40, deadline=None)
@given(graph=implicit_graphs())
def test_property_oracle_matches_materialized(graph):
    mat = graph.materialize()
    assert mat.n == graph.n and mat.m == graph.m
    for v in range(graph.n):
        inc = mat.incidence(v)
        for k, (_, w) in enumerate(inc):
            assert graph.kth_neighbor(v, k) == w


@settings(max_examples=20, deadline=None)
@given(graph=implicit_graphs())
def test_property_srw_steps_bit_identically(graph):
    if graph.n > 1 and graph.min_degree == 0:  # pragma: no cover - never for these families
        return
    rng_o, rng_r = random.Random(3), random.Random(3)
    oracle = OracleSRW(graph, 0, rng=rng_o, track_edges=True)
    ref = SimpleRandomWalk(graph.materialize(), 0, rng=rng_r, track_edges=True)
    for _ in range(80):
        assert oracle.step() == ref.step()
    assert rng_o.getstate() == rng_r.getstate()
    assert oracle.num_visited_edges == ref.num_visited_edges
