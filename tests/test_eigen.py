"""Tests for eigenvalue extraction against closed-form spectra."""

import math

import pytest

from repro.errors import SpectralError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.spectral.eigen import (
    extreme_eigenvalues,
    lambda_2,
    lambda_max,
    lambda_n,
    spectral_gap,
    transition_spectrum,
)


class TestClosedForms:
    def test_cycle_lambda2(self):
        n = 10
        assert lambda_2(cycle_graph(n)) == pytest.approx(math.cos(2 * math.pi / n), abs=1e-9)

    def test_complete_graph_spectrum(self):
        n = 6
        values = transition_spectrum(complete_graph(n))
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(-1.0 / (n - 1))
        assert values[-1] == pytest.approx(-1.0 / (n - 1))

    def test_petersen(self):
        g = petersen_graph()
        assert lambda_2(g) == pytest.approx(1.0 / 3.0, abs=1e-9)
        assert lambda_n(g) == pytest.approx(-2.0 / 3.0, abs=1e-9)
        assert lambda_max(g) == pytest.approx(2.0 / 3.0, abs=1e-9)
        assert spectral_gap(g) == pytest.approx(1.0 / 3.0, abs=1e-9)

    def test_hypercube_spectrum(self):
        r = 4
        g = hypercube_graph(r)
        values = transition_spectrum(g)
        expected = sorted(
            (1 - 2 * k / r for k in range(r + 1) for _ in range(math.comb(r, k))),
            reverse=True,
        )
        assert values == pytest.approx(expected, abs=1e-9)

    def test_even_cycle_bipartite_gap_zero(self):
        g = cycle_graph(8)
        assert lambda_n(g) == pytest.approx(-1.0, abs=1e-9)
        assert spectral_gap(g) == pytest.approx(0.0, abs=1e-9)

    def test_star_bipartite(self):
        assert spectral_gap(star_graph(5)) == pytest.approx(0.0, abs=1e-9)


class TestLazyWalk:
    def test_lazy_gap_positive_on_bipartite(self):
        g = cycle_graph(8)
        lazy_gap = spectral_gap(g, lazy=True)
        assert lazy_gap == pytest.approx((1 - lambda_2(g)) / 2, abs=1e-9)
        assert lazy_gap > 0

    def test_lazy_hypercube_gap_one_over_r(self):
        r = 4
        assert spectral_gap(hypercube_graph(r), lazy=True) == pytest.approx(1.0 / r, abs=1e-9)


class TestSparsePath:
    def test_lanczos_matches_regular_theory(self, rng_factory):
        # n = 700 > DENSE_THRESHOLD triggers Lanczos; random 4-regular graphs
        # have lambda_2 close to the Alon-Boppana value 2*sqrt(3)/4 ≈ 0.866.
        g = random_connected_regular_graph(700, 4, rng_factory(5))
        l2 = lambda_2(g)
        assert 0.5 < l2 < 0.95
        assert spectral_gap(g) > 0.04

    def test_dense_and_sparse_agree_on_boundary(self, rng_factory):
        from repro.spectral import eigen

        g = random_connected_regular_graph(80, 4, rng_factory(6))
        dense = extreme_eigenvalues(g)
        original = eigen.DENSE_THRESHOLD
        eigen.DENSE_THRESHOLD = 10  # force the Lanczos path
        try:
            sparse = extreme_eigenvalues(g)
        finally:
            eigen.DENSE_THRESHOLD = original
        assert dense == pytest.approx(sparse, abs=1e-7)


class TestErrors:
    def test_single_vertex_rejected(self):
        with pytest.raises(SpectralError):
            extreme_eigenvalues(Graph(1, []))

    def test_disconnected_rejected(self):
        with pytest.raises(SpectralError):
            extreme_eigenvalues(Graph(4, [(0, 1), (2, 3)]))

    def test_multigraph_spectrum_well_defined(self):
        g = Graph(2, [(0, 1), (0, 1)])
        l1, l2, ln = extreme_eigenvalues(g)
        assert l1 == pytest.approx(1.0)
        assert ln == pytest.approx(-1.0)
