"""Shared plumbing for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md's
index (one paper table/figure or in-text claim).  The pattern:

* the experiment body runs exactly once under ``benchmark.pedantic`` (the
  timing pytest-benchmark reports is the whole experiment);
* the paper-shaped table is printed *and* written to ``benchmarks/out/`` so
  EXPERIMENTS.md can embed it;
* headline scalars land in ``benchmark.extra_info`` for the JSON output.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.eprocess import EdgeProcess
from repro.sim.rng import DEFAULT_ROOT_SEED
from repro.walks.srw import SimpleRandomWalk

OUTPUT_DIR = Path(__file__).parent / "out"

#: Shared experiment store for spec-based harnesses (bench_figure1,
#: bench_edge_cover_rr, ...): completed trials persist across runs, so a
#: re-run — or a run interrupted and restarted — only computes the gaps.
STORE_DIR = OUTPUT_DIR / "store"

#: One root seed for the whole harness: rerunning reproduces every number.
ROOT_SEED = DEFAULT_ROOT_SEED


@pytest.fixture(scope="session")
def emit():
    """``emit(name, text)``: print a rendered table and archive it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def eprocess_factory(graph, start, rng):
    """Standard E-process construction for benchmarks (lean recording)."""
    return EdgeProcess(graph, start, rng=rng, record_phases=False)


def srw_factory(graph, start, rng):
    """Standard SRW construction for benchmarks."""
    return SimpleRandomWalk(graph, start, rng=rng)


def srw_edge_factory(graph, start, rng):
    """SRW with edge tracking (edge cover measurements)."""
    return SimpleRandomWalk(graph, start, rng=rng, track_edges=True)
