"""E5 — Theorem 3: edge cover O(m + m/(1−λ)² (log n / g + log Δ)) on
high-girth even-degree expanders.

Workload: the title's graphs — LPS Ramanujan expanders X^{5,q} (6-regular,
girth Ω(log n)).  The normalized edge cover CE/m must stay bounded as n
grows (the girth term kills the log n factor), and sit far below the SRW's
edge cover which pays Θ(log n).
"""

from __future__ import annotations

import math

from conftest import ROOT_SEED, eprocess_factory, srw_edge_factory

from repro.core.bounds import theorem3_edge_cover_bound
from repro.graphs.properties import girth
from repro.graphs.ramanujan import lps_graph
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table
from repro.spectral.eigen import spectral_gap

QS = [13, 17, 29]
TRIALS = 3


def _run():
    rows = []
    ratios = []
    for q in QS:
        graph = lps_graph(5, q)
        g_val = girth(graph, upper_bound=24)
        gap = spectral_gap(graph, lazy=True)  # bipartite cases need laziness
        ce = cover_time_trials(
            graph, eprocess_factory, trials=TRIALS, root_seed=ROOT_SEED,
            target="edges", label=f"E5-e-{q}",
        )
        srw_ce = cover_time_trials(
            graph, srw_edge_factory, trials=TRIALS, root_seed=ROOT_SEED,
            target="edges", label=f"E5-s-{q}",
        )
        bound = theorem3_edge_cover_bound(
            graph.m, graph.n, gap, g_val, graph.max_degree, constant=1.0
        )
        ratio = ce.stats.mean / graph.m
        ratios.append(ratio)
        rows.append(
            [
                f"X^{{5,{q}}}",
                graph.n,
                graph.m,
                g_val,
                round(gap, 3),
                ce.stats.mean / graph.m,
                bound / graph.m,
                srw_ce.stats.mean / (graph.m * math.log(graph.m)),
            ]
        )
    return rows, ratios


def bench_theorem3_high_girth_edge_cover(benchmark, emit):
    rows, ratios = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["graph", "n", "m", "girth", "lazy gap", "CE(E)/m", "Thm3 bound/m", "CE(SRW)/(m ln m)"],
        rows,
        title="E5 / Theorem 3: E-process edge cover on LPS high-girth even "
        "expanders stays O(m); SRW pays the full m ln m",
    )
    emit("E5_edge_cover_girth", table)

    # CE/m bounded (well below ln m, which is 9-11 here), and under Theorem 3
    for row, ratio in zip(rows, ratios):
        assert ratio < 5.0, f"{row[0]}: CE/m = {ratio}"
        assert ratio <= row[6], f"{row[0]}: exceeded Theorem 3 with constant 1"
    benchmark.extra_info["max_ce_over_m"] = round(max(ratios), 3)
