"""E6 — Corollary 4: CE(E-process) = O(ωn) on random 4-regular graphs.

Random regular graphs have constant girth whp (small cycles exist), so
Theorem 3 does not apply directly; Corollary 4 says the edge cover is
nevertheless ω(n)-linear for any ω → ∞.  Measured: CE/n grows (much)
slower than ln n — we print it against ln n and fit the normalized profile,
whose slope must sit well below the SRW's.

Declared as an edge-target :class:`SweepSpec` against the shared benchmark
store, so re-runs reuse completed trials and the table is rebuilt from the
store alone.
"""

from __future__ import annotations

import math

from conftest import ROOT_SEED, STORE_DIR

from repro.experiments import ResultStore, SweepSpec, run_sweep, sweep_runs_from_store
from repro.sim.fitting import fit_normalized_profile
from repro.sim.tables import format_table

SIZES = [1000, 2000, 4000, 8000, 16000]
TRIALS = 5
DEGREE = 4

SWEEP = SweepSpec.regular_grid(
    name="E6-edge-cover",
    sizes=SIZES,
    degrees=[DEGREE],
    walk="eprocess",
    trials=TRIALS,
    root_seed=ROOT_SEED,
    target="edges",
)


def _run():
    store = ResultStore(STORE_DIR)
    run_sweep(SWEEP, store=store)
    rows = []
    means = []
    for spec, run in sweep_runs_from_store(store, SWEEP):
        n = spec.params["n"]
        m = n * DEGREE // 2
        means.append(run.stats.mean)
        rows.append([n, m, run.stats.mean, run.stats.mean / n, math.log(n)])
    profile = fit_normalized_profile(SIZES, means)
    return rows, profile


def bench_corollary4_edge_cover_random_regular(benchmark, emit):
    rows, profile = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["n", "m", "CE(E) mean", "CE(E)/n", "ln n (reference)"],
        rows,
        title="E6 / Corollary 4: edge cover of the E-process on G(n,4) — "
        "CE/n grows far slower than ln n (O(ω n) for slowly growing ω)",
    )
    emit("E6_edge_cover_random_regular", table)

    # CE/n must grow much slower than ln n: the profile slope of CE
    # (y/n = a + b ln n) is far below 1 — the SRW's vertex-cover slope alone
    # is ≈ 2 on this family.  Measured runs come out essentially flat
    # (slope ≈ 0, sometimes marginally negative from noise).
    benchmark.extra_info["profile_slope"] = round(profile.slope, 4)
    assert -0.3 < profile.slope < 0.8
    # and the normalized values stay small in absolute terms
    assert all(row[3] < row[4] for row in rows[1:])  # CE/n < ln n beyond n=1000
