"""E13 — giant-graph cover runs on the implicit neighbor-oracle backend.

The paper's cover-time claims are asymptotic; the materialized
:class:`~repro.graphs.Graph` tops out around 10^6 vertices before the
incidence tables dominate memory.  This bench drives the implicit
backend (:mod:`repro.graphs.implicit`) to n >= 10^7: it runs single
SRW and/or E-process vertex-cover trials on an implicit family member,
reports steps, wall time, steps/second and **peak RSS**, and (optionally)
enforces an RSS ceiling — the acceptance check that the oracle path
really runs in O(n) bits rather than O(n·d) incidence entries.

Standalone only (no pytest-benchmark timing):

    python benchmarks/bench_implicit_scale.py --r 24 --walks srw eprocess
    python benchmarks/bench_implicit_scale.py --smoke   # CI: r=21, RSS cap

``--smoke`` (the CI ``giant-graph-smoke`` job) runs one SRW cover trial
on ``implicit_hypercube r=21`` (2,097,152 vertices) and fails if peak
RSS exceeds the ceiling (default 2048 MB — far below what materializing
the 21·2^20-edge incidence structure would need, so a regression that
silently materializes trips it immediately).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import NAMED_WALK_FACTORIES  # noqa: E402
from repro.graphs import ImplicitHashedRegular, ImplicitHypercube  # noqa: E402
from repro.sim.rng import DEFAULT_ROOT_SEED, spawn  # noqa: E402
from repro.telemetry import (  # noqa: E402
    HeartbeatReporter,
    Telemetry,
    peak_rss_bytes,
    session,
)

OUT_PATH = Path(__file__).resolve().parent / "out" / "BENCH_implicit_scale.json"


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    Delegates to :func:`repro.telemetry.peak_rss_bytes`, which owns the
    Linux-KiB-vs-macOS-bytes ``ru_maxrss`` normalization.
    """
    return peak_rss_bytes() / (1024 * 1024)


def run_one(graph, walk: str, seed_label: str) -> dict:
    """One vertex-cover trial of ``walk`` on ``graph`` (oracle engine)."""
    factory = NAMED_WALK_FACTORIES[walk]["array"]
    process = factory(graph, 0, spawn(DEFAULT_ROOT_SEED, seed_label))
    t0 = time.perf_counter()
    cover = process.run_until_vertex_cover()
    wall = time.perf_counter() - t0
    return {
        "walk": walk,
        "graph": graph.name,
        "n": graph.n,
        "m": graph.m,
        "cover_steps": cover,
        "wall_seconds": round(wall, 3),
        "steps_per_sec": round(cover / wall) if wall else None,
        "cover_over_n": round(cover / graph.n, 3),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--r", type=int, default=24,
                        help="hypercube dimension (n = 2^r; default 24 ≈ 1.7e7)")
    parser.add_argument("--family", default="hypercube",
                        choices=["hypercube", "hashed"],
                        help="implicit family (hashed: random 4-regular wiring "
                        "on n = 2^r vertices)")
    parser.add_argument("--walks", nargs="+", default=["srw", "eprocess"],
                        choices=["srw", "eprocess", "vprocess"])
    parser.add_argument("--rss-limit-mb", type=float, default=None,
                        help="fail (exit 1) if peak RSS exceeds this")
    parser.add_argument("--heartbeat", type=float, default=None,
                        metavar="SECONDS",
                        help="emit a progress line to stderr every SECONDS "
                        "seconds while a trial runs (giant runs take "
                        "minutes; this shows they are alive)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: r=21 SRW trial under a 2048 MB RSS "
                        "ceiling; no files written")
    args = parser.parse_args(argv)

    if args.smoke:
        args.r = min(args.r, 21)
        args.walks = ["srw"]
        if args.rss_limit_mb is None:
            args.rss_limit_mb = 2048.0

    if args.family == "hypercube":
        graph = ImplicitHypercube(args.r)
    else:
        graph = ImplicitHashedRegular(1 << args.r, 4,
                                      key=spawn(DEFAULT_ROOT_SEED, "E13-key").getrandbits(64))
    print(f"graph: {graph.describe()}", flush=True)

    tel = (
        Telemetry(heartbeat=HeartbeatReporter(args.heartbeat))
        if args.heartbeat is not None
        else None
    )
    results = []
    for walk in args.walks:
        if tel is not None:
            with session(tel):
                row = run_one(graph, walk, f"E13-{walk}")
        else:
            row = run_one(graph, walk, f"E13-{walk}")
        results.append(row)
        print(
            f"{walk}: cover={row['cover_steps']} steps "
            f"({row['cover_over_n']}·n) in {row['wall_seconds']}s "
            f"({row['steps_per_sec']}/s), peak RSS {row['peak_rss_mb']} MB",
            flush=True,
        )

    worst = max(row["peak_rss_mb"] for row in results)
    if args.rss_limit_mb is not None:
        if worst > args.rss_limit_mb:
            print(f"FAIL peak RSS {worst} MB exceeds ceiling {args.rss_limit_mb} MB")
            return 1
        print(f"peak RSS {worst} MB within ceiling {args.rss_limit_mb} MB")

    if not args.smoke:
        OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
        OUT_PATH.write_text(json.dumps({"results": results}, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
