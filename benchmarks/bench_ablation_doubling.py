"""E14 — ablation: even degree alone vs ℓ-goodness (edge doubling).

Section 5 asks how important the even-degree constraint is.  Theorem 1
actually has *two* hypotheses — even degrees AND ℓ-goodness Ω(log n) —
and edge doubling separates them experimentally: doubling every edge of a
random 3-regular graph yields a 6-regular *even-degree* multigraph whose
ℓ-goodness collapses to 4 (a vertex's doubled star is itself an even
subgraph on 4 vertices).

Measured outcome: the doubled graph's normalized E-process cover time
*still grows logarithmically*, tracking the plain d=3 walk — parity alone
buys nothing; the ℓ = Ω(log n) structure is the real driver of the Θ(n)
result.  (The ℓ-mechanism is identical to Section 5's: doubled stars
strand unvisited vertices just as odd-degree turn-aways do.)
"""

from __future__ import annotations

from conftest import ROOT_SEED, eprocess_factory

from repro.core.goodness import ell_value_at
from repro.graphs.random_regular import random_connected_regular_graph
from repro.graphs.transform import double_edges
from repro.sim.fitting import fit_normalized_profile
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table

SIZES = [1000, 2000, 4000, 8000]
TRIALS = 3


def _run():
    rows = []
    series = {"2x G(n,3)": [], "G(n,4)": []}
    for n in SIZES:
        doubled_run = cover_time_trials(
            workload=lambda rng, nn=n: double_edges(
                random_connected_regular_graph(nn, 3, rng)
            ),
            walk_factory=eprocess_factory,
            trials=TRIALS,
            root_seed=ROOT_SEED,
            label=f"E14-2x3-{n}",
        )
        plain4_run = cover_time_trials(
            workload=lambda rng, nn=n: random_connected_regular_graph(nn, 4, rng),
            walk_factory=eprocess_factory,
            trials=TRIALS,
            root_seed=ROOT_SEED,
            label=f"E14-4-{n}",
        )
        series["2x G(n,3)"].append(doubled_run.stats.mean)
        series["G(n,4)"].append(plain4_run.stats.mean)
        rows.append([n, doubled_run.stats.mean / n, plain4_run.stats.mean / n])
    # certified ℓ on a small doubled cubic graph (K4: exact search tractable)
    from repro.graphs.generators import complete_graph

    ell_doubled = ell_value_at(double_edges(complete_graph(4)), 0)
    return rows, series, ell_doubled


def bench_doubling_ablation(benchmark, emit):
    rows, series, ell_doubled = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["n", "CV(E)/n on 2x G(n,3)  [even, ell=4]", "CV(E)/n on G(n,4)  [even, ell=Θ(log n)]"],
        rows,
        title="E14 / ablation: edge doubling gives even degrees but constant "
        "ℓ — and the cover time stays Θ(n log n); ℓ-goodness, not parity, "
        "drives Theorem 1",
    )
    emit("E14_doubling_ablation", table)

    doubled_profile = fit_normalized_profile(SIZES, series["2x G(n,3)"])
    plain_profile = fit_normalized_profile(SIZES, series["G(n,4)"])
    benchmark.extra_info["doubled_slope"] = round(doubled_profile.slope, 4)
    benchmark.extra_info["g4_slope"] = round(plain_profile.slope, 4)
    benchmark.extra_info["ell_doubled"] = ell_doubled

    # the doubled star at a degree-6 vertex: v + its 3 neighbours
    assert ell_doubled == 4
    # doubled graph grows (log regime); the honest even+goodness family is flat
    assert doubled_profile.slope > 0.5
    assert abs(plain_profile.slope) < 0.25