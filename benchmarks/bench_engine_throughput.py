"""E12 — engine throughput: steps/second of the walk engines.

Not a paper claim — this is the harness's own scaling sanity check, and the
one benchmark in the suite that uses pytest-benchmark's repeated-rounds
timing the classic way.  It documents how far the pure-Python engines can
be pushed toward the paper's n = 5·10⁵ grid.
"""

from __future__ import annotations

from conftest import ROOT_SEED

from repro.core.eprocess import EdgeProcess
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.rng import spawn
from repro.walks.rotor import RotorRouterWalk
from repro.walks.srw import SimpleRandomWalk

N = 20_000
DEGREE = 4
CHUNK = 50_000


def _graph():
    return random_connected_regular_graph(N, DEGREE, spawn(ROOT_SEED, "E12"))


def bench_srw_steps(benchmark):
    graph = _graph()
    walk = SimpleRandomWalk(graph, 0, rng=spawn(ROOT_SEED, "E12-s"))

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_eprocess_steps(benchmark):
    graph = _graph()
    walk = EdgeProcess(graph, 0, rng=spawn(ROOT_SEED, "E12-e"), record_phases=False)

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_rotor_steps(benchmark):
    graph = _graph()
    walk = RotorRouterWalk(graph, 0, rng=spawn(ROOT_SEED, "E12-r"))

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK
