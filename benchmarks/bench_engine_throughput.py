"""E12 — engine throughput: steps/second of the walk engines.

Not a paper claim — this is the harness's own scaling sanity check, and the
one benchmark in the suite that uses pytest-benchmark's repeated-rounds
timing the classic way.  It documents how far the engines can be pushed
toward the paper's n = 5·10⁵ grid.

Two modes:

* under pytest (``pytest benchmarks/ --benchmark-only``): the classic
  per-engine chunk benches below;
* standalone (``python benchmarks/bench_engine_throughput.py``): a
  reference-vs-array comparison of every engine pair (srw, eprocess,
  rotor, rwc2) on a 10k-vertex random 4-regular graph, plus per-walk
  fleet sections (srw, eprocess, vprocess on the regular graph, and
  srw_irregular on a mixed-degree graph) comparing each lockstep
  fleet's aggregate cover throughput against the same trials on the
  walk's best per-trial engine.  Fleet sections additionally time the
  *numpy* and *native* (fused C kernel) stepwise paths separately —
  ``native_speedup`` is native-over-numpy for the same fleet, null when
  the extension is not built or the walk/shape never enters the
  stepwise kernel (regular-graph SRW fleets use the prefiltered block
  kernel).  Written to ``benchmarks/out/BENCH_engine.json`` and appended
  (one JSON line per run) to ``benchmarks/out/BENCH_engine_history.jsonl``
  so the perf trajectory accumulates across PRs — see
  ``benchmarks/README.md`` for how to read it.

Steady-state throughput is the headline number (walks warmed past cover,
so both engines step the same saturated state); cold numbers (fresh walk,
cover bookkeeping live) are reported alongside.

``--smoke`` (used by CI) swaps timing for correctness: on a small graph
it asserts every engine pair — array twins and the srw/eprocess/vprocess
fleets — stays bit-identical to its reference, and exits non-zero on any
mismatch.  No timing assertions, no files written.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

try:
    from conftest import ROOT_SEED
except ImportError:  # standalone: not running under pytest's rootdir
    from repro.sim.rng import DEFAULT_ROOT_SEED as ROOT_SEED

from repro.core.eprocess import EdgeProcess
from repro.engine import (
    ArrayEdgeProcess,
    ArrayRotorRouter,
    ArrayRWC,
    ArraySRW,
    FLEET_ENGINES,
    NAMED_WALK_FACTORIES,
    native,
)
from repro.graphs.random_regular import (
    random_connected_regular_graph,
    random_even_degree_graph,
)
from repro.sim.rng import spawn
from repro.telemetry import Telemetry, session
from repro.walks.choice import RandomWalkWithChoice
from repro.walks.rotor import RotorRouterWalk
from repro.walks.srw import SimpleRandomWalk

N = 20_000
DEGREE = 4
CHUNK = 50_000

#: Standalone-report configuration (the acceptance workload).
JSON_N = 10_000
JSON_CHUNK = 400_000
JSON_ROUNDS = 5
FLEET_SIZES = (32, 64, 128)
#: Fleet sections measured standalone: section -> (walk, graph kind,
#: fleet sizes).  The SRW block kernel saturates early; the stepwise
#: E-/V-process kernels keep gaining with width, so their sections sweep
#: to the default 128.  ``srw_irregular`` runs on a mixed-degree graph so
#: the SRW exercises the *stepwise* kernel (and with it the native fused
#: path) instead of the regular-graph block kernel.
FLEET_SECTIONS = {
    "srw": ("srw", "regular", FLEET_SIZES),
    "eprocess": ("eprocess", "regular", FLEET_SIZES),
    "vprocess": ("vprocess", "regular", FLEET_SIZES),
    "srw_irregular": ("srw", "irregular", (128,)),
}
OUT_DIR = Path(__file__).parent / "out"
OUTPUT_PATH = OUT_DIR / "BENCH_engine.json"
HISTORY_PATH = OUT_DIR / "BENCH_engine_history.jsonl"


def _graph():
    return random_connected_regular_graph(N, DEGREE, spawn(ROOT_SEED, "E12"))


def _irregular_graph(n: int, rng):
    """Connected mixed-degree (4/6) graph: the stepwise-SRW workload."""
    from repro.graphs.properties import is_connected

    degrees = [4, 6] * (n // 2)
    for _ in range(50):
        g = random_even_degree_graph(degrees, rng, name=f"EvenDS({n})")
        if is_connected(g):
            return g
    raise RuntimeError(f"no connected even-degree sample for n={n}")


def bench_srw_steps(benchmark):
    graph = _graph()
    walk = SimpleRandomWalk(graph, 0, rng=spawn(ROOT_SEED, "E12-s"))

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_eprocess_steps(benchmark):
    graph = _graph()
    walk = EdgeProcess(graph, 0, rng=spawn(ROOT_SEED, "E12-e"), record_phases=False)

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_rotor_steps(benchmark):
    graph = _graph()
    walk = RotorRouterWalk(graph, 0, rng=spawn(ROOT_SEED, "E12-r"))

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_rwc_steps(benchmark):
    graph = _graph()
    walk = RandomWalkWithChoice(graph, 0, d=2, rng=spawn(ROOT_SEED, "E12-c"))

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_array_srw_steps(benchmark):
    graph = _graph()
    walk = ArraySRW(graph, 0, rng=spawn(ROOT_SEED, "E12-s"))

    def chunk():
        walk.run_chunk(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_array_eprocess_steps(benchmark):
    graph = _graph()
    walk = ArrayEdgeProcess(graph, 0, rng=spawn(ROOT_SEED, "E12-e"), record_phases=False)

    def chunk():
        walk.run_chunk(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_array_rotor_steps(benchmark):
    graph = _graph()
    walk = ArrayRotorRouter(graph, 0, rng=spawn(ROOT_SEED, "E12-r"))

    def chunk():
        walk.run_chunk(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_array_rwc_steps(benchmark):
    graph = _graph()
    walk = ArrayRWC(graph, 0, d=2, rng=spawn(ROOT_SEED, "E12-c"))

    def chunk():
        walk.run_chunk(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


# ----------------------------------------------------------------------
# Standalone BENCH_engine.json emitter
# ----------------------------------------------------------------------
def _warmed(make_walk, warm: bool):
    walk = make_walk()
    if warm:
        walk.run_until_vertex_cover()
        walk.run_until_edge_cover()
        walk.run(1024)
    return walk


def _timed_chunk(walk, chunk_steps: int) -> float:
    t0 = time.perf_counter()
    walk.run(chunk_steps)
    return chunk_steps / (time.perf_counter() - t0)


def _measure_pair(make_reference, make_array, warm: bool, chunk_steps: int, rounds: int) -> dict:
    """Throughput of a reference/array walk pair on identical seeds.

    Rounds are *interleaved* (reference chunk, then array chunk, per
    round) so slow thermal/load drift hits both sides alike instead of
    whichever engine is measured second; best-of-rounds per side.

    ``warm`` measures steady state: one walk per side, saturated (vertex
    + edge cover plus a settling chunk) before timing, reused across
    rounds.  Cold constructs **fresh walks per round** so every round
    pays the live cover bookkeeping — reusing one walk would silently
    measure steady state from round 2 on.
    """
    ref_sps = arr_sps = 0.0
    reference = _warmed(make_reference, warm) if warm else None
    array = _warmed(make_array, warm) if warm else None
    for _ in range(rounds):
        if not warm:
            reference = _warmed(make_reference, warm)
            array = _warmed(make_array, warm)
        ref_sps = max(ref_sps, _timed_chunk(reference, chunk_steps))
        arr_sps = max(arr_sps, _timed_chunk(array, chunk_steps))
    return {
        "reference_steps_per_sec": round(ref_sps),
        "array_steps_per_sec": round(arr_sps),
        "speedup": round(arr_sps / ref_sps, 2),
    }


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _measure_fleet(graph, walk: str, fleet_size: int, rounds: int) -> dict:
    """Aggregate cover throughput: one lockstep ``walk`` fleet vs. the
    same trials on the walk's best per-trial engine (total vertex-cover
    steps / wall seconds, both sides), with the fleet's numpy and native
    stepwise paths timed separately.

    The per-trial comparator is the walk's ``"fleet"`` registry entry —
    exactly the per-trial twin each fleet lane is bit-identical to
    (``ArraySRW``/``ArrayEdgeProcess`` for srw/eprocess, the reference
    walk for vprocess, which has no array twin).

    Reported speedups are *medians of per-round ratios* — each round
    times every side back to back, so slow machine-load drift cancels
    inside a round instead of biasing whichever side a best-of-runs
    comparison happened to favour.  ``speedup`` compares the best fleet
    path (native when built) against per-trial; ``native_speedup``
    compares the native and numpy paths of the *same* fleet (null when
    the extension is missing).
    """
    per_trial = NAMED_WALK_FACTORIES[walk]["fleet"]
    make_fleet = FLEET_ENGINES[walk]
    # Regular-graph SRW fleets run the prefiltered block kernel, which has
    # no native variant — timing "native" there would just re-time the
    # block kernel and publish noise as a ratio.  Only the stepwise
    # kernels (E-/V-process anywhere, SRW on irregular lanes) report one.
    stepwise = walk != "srw" or not graph.is_regular()
    use_native = native.available() and stepwise
    starts = [random.Random(100 + k).randrange(graph.n) for k in range(fleet_size)]

    def timed_fleet(native_pref):
        rngs = [random.Random(1000 + k) for k in range(fleet_size)]
        t0 = time.perf_counter()
        fleet = make_fleet([graph] * fleet_size, starts, rngs, native=native_pref)
        cover = fleet.run_until_cover("vertices")
        return sum(cover), sum(cover) / (time.perf_counter() - t0)

    numpy_best = native_best = seq_best = 0.0
    ratios, native_ratios = [], []
    total = 0
    for _ in range(rounds):
        total, numpy_sps = timed_fleet(False)
        native_sps = None
        if use_native:
            native_total, native_sps = timed_fleet(True)
            assert native_total == total, f"{walk} native fleet diverged from numpy"
            native_best = max(native_best, native_sps)
        t0 = time.perf_counter()
        seq_total = 0
        for k in range(fleet_size):
            seq = per_trial(graph, starts[k], random.Random(1000 + k))
            seq_total += seq.run_until_vertex_cover()
        seq_sps = seq_total / (time.perf_counter() - t0)
        assert seq_total == total, f"{walk} fleet and sequential cover totals diverged"
        numpy_best = max(numpy_best, numpy_sps)
        seq_best = max(seq_best, seq_sps)
        ratios.append((native_sps if use_native else numpy_sps) / seq_sps)
        if use_native:
            native_ratios.append(native_sps / numpy_sps)
    fleet_best = native_best if use_native else numpy_best
    return {
        "trials": fleet_size,
        "total_cover_steps": total,
        "fleet_steps_per_sec": round(fleet_best),
        "numpy_fleet_steps_per_sec": round(numpy_best),
        "native_fleet_steps_per_sec": round(native_best) if use_native else None,
        "per_trial_steps_per_sec": round(seq_best),
        "speedup": round(_median(ratios), 2),
        "native_speedup": round(_median(native_ratios), 2) if use_native else None,
    }


#: (name, reference seed-suffix) for the four reference/array pairs; the
#: factories come from the engine registry, so the bench measures exactly
#: what `cover_time_trials(engine=...)` runs.
_PAIRS = ("srw", "eprocess", "rotor", "rwc2")


def _pair_factories(name: str, graph, seed_label: str):
    variants = NAMED_WALK_FACTORIES[name]

    def make_reference():
        return variants["reference"](graph, 0, spawn(ROOT_SEED, seed_label))

    def make_array():
        return variants["array"](graph, 0, spawn(ROOT_SEED, seed_label))

    return make_reference, make_array


def run_smoke(n: int) -> int:
    """Correctness-only pass: every engine pair bit-identical on a small
    graph (array twins: full state; fleet: cover times + RNG end-state).
    Returns a process exit code."""
    graph = random_connected_regular_graph(n, DEGREE, spawn(ROOT_SEED, "E12-smoke"))
    failures = []
    for name in _PAIRS:
        variants = NAMED_WALK_FACTORIES[name]
        reference = variants["reference"](graph, 0, random.Random(99))
        array = variants["array"](graph, 0, random.Random(99))
        reference.run(20_000)
        array.run(20_000)
        state_ref = (
            reference.current,
            reference.steps,
            list(reference.first_visit_time),
            list(reference.first_edge_visit_time),
            reference.rng.getstate(),
        )
        state_arr = (
            array.current,
            array.steps,
            list(array.first_visit_time),
            list(array.first_edge_visit_time),
            array.rng.getstate(),
        )
        if state_ref != state_arr:
            failures.append(f"{name}: array state diverged from reference")
        else:
            print(f"smoke {name}: array == reference over 20k steps")
    # Implicit neighbor-oracle parity: the oracle engines on implicit
    # graphs must replay the reference walks on the materialized twins.
    from repro.graphs import ImplicitHypercube, ImplicitTorus

    for oracle_graph in (ImplicitHypercube(8), ImplicitTorus(12, 16)):
        materialized = oracle_graph.materialize()
        for name in ("srw", "eprocess", "vprocess"):
            variants = NAMED_WALK_FACTORIES[name]
            oracle = variants["reference"](oracle_graph, 0, random.Random(777))
            twin = variants["reference"](materialized, 0, random.Random(777))
            if (
                oracle.run_until_vertex_cover() != twin.run_until_vertex_cover()
                or oracle.rng.getstate() != twin.rng.getstate()
            ):
                failures.append(
                    f"{name}: oracle diverged from materialized reference "
                    f"on {oracle_graph.name}"
                )
            else:
                print(
                    f"smoke {name}: oracle == materialized reference "
                    f"({oracle_graph.name})"
                )
    K = 7
    use_native = native.available()
    print(
        "smoke native kernel: "
        + (native.kernel_path() if use_native else f"unavailable ({native.unavailable_reason()})")
    )
    irregular = _irregular_graph(min(n, 200), spawn(ROOT_SEED, "E12-smoke-irr"))
    kernels = [("numpy", False)] + ([("native", True)] if use_native else [])
    for shape, g in (("regular", graph), ("irregular", irregular)):
        starts = [random.Random(100 + k).randrange(g.n) for k in range(K)]
        for walk_name in sorted(FLEET_ENGINES):
            for kernel, pref in kernels:
                reference = NAMED_WALK_FACTORIES[walk_name]["reference"]
                rngs = [random.Random(1000 + k) for k in range(K)]
                twins = [random.Random(1000 + k) for k in range(K)]
                fleet = FLEET_ENGINES[walk_name](
                    [g] * K, starts, rngs, native=pref
                )
                cover = fleet.run_until_cover("vertices")
                bad = False
                for k in range(K):
                    walk = reference(g, starts[k], twins[k])
                    if (
                        cover[k] != walk.run_until_vertex_cover()
                        or rngs[k].getstate() != twins[k].getstate()
                    ):
                        failures.append(
                            f"fleet {walk_name} ({shape}, {kernel}) lane {k}: "
                            "diverged from sequential walk"
                        )
                        bad = True
                if not bad:
                    print(
                        f"smoke fleet {walk_name} ({shape}, {kernel}): "
                        f"{K} lanes == sequential walks (covers + RNG state)"
                    )
    for failure in failures:
        print(f"FAIL {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=JSON_ROUNDS,
                        help="best-of rounds per measurement")
    parser.add_argument("--n", type=int, default=JSON_N,
                        help="benchmark graph size (4-regular)")
    parser.add_argument("--chunk", type=int, default=JSON_CHUNK,
                        help="steps per timed chunk")
    parser.add_argument("--smoke", action="store_true",
                        help="correctness-only: assert every engine pair "
                        "bit-identical on a small graph; write nothing")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(min(args.n, 600))

    graph = random_connected_regular_graph(args.n, DEGREE, spawn(ROOT_SEED, "E12-json"))
    engines = {}
    for name in _PAIRS:
        make_reference, make_array = _pair_factories(name, graph, f"E12-json-{name}")
        engines[name] = {
            "steady": _measure_pair(make_reference, make_array, True, args.chunk, args.rounds),
            "cold": _measure_pair(make_reference, make_array, False, args.chunk, args.rounds),
        }
    irregular = _irregular_graph(args.n, spawn(ROOT_SEED, "E12-json-irr"))
    # The fleet sections run under an *enabled* telemetry context so the
    # report carries the engines' own counters (word-bank refills,
    # per-degree rejection rates, block/lane accounting) next to the
    # timings — telemetry reads counts only, so the timed numbers are the
    # same trajectories either way.
    tel = Telemetry()
    with session(tel):
        fleet = {
            section: {
                f"k{K}": _measure_fleet(
                    graph if kind == "regular" else irregular, walk, K, args.rounds
                )
                for K in sizes
            }
            for section, (walk, kind, sizes) in FLEET_SECTIONS.items()
        }
    snap = tel.snapshot()
    report = {
        "benchmark": "engine_throughput",
        "n": args.n,
        "degree": DEGREE,
        "chunk_steps": args.chunk,
        "rounds": args.rounds,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "native_kernel": native.kernel_path() or "unavailable",
        "engines": engines,
        "fleet": fleet,
        "metrics": {
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "note": (
                "engine telemetry aggregated over every fleet round above "
                "(numpy + native + the per-trial comparators); "
                "wordbank.degree[q].rejected_words / wordbank.degree[q].draws "
                "is the rejection-sampling waste per degree class"
            ),
        },
        "methodology": (
            "best-of-rounds run() throughput on one shared graph; 'steady' "
            "warms each walk past vertex+edge cover first, 'cold' starts "
            "from a fresh walk with cover bookkeeping live; each 'fleet' "
            "section compares aggregate vertex-cover-trial throughput "
            "(total cover steps / wall) of one lockstep fleet against the "
            "same trials on the walk's best per-trial engine (speedup = "
            "median of per-round ratios; fleet side = native fused kernel "
            "when built), and 'native_speedup' compares the same fleet's "
            "native and numpy stepwise paths (null when the extension is "
            "missing or the shape never enters the stepwise kernel)"
        ),
    }
    report["speedup"] = report["engines"]["srw"]["steady"]["speedup"]
    OUT_DIR.mkdir(exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    # Append the run to the across-PRs trajectory (one JSON line per run).
    summary = {
        "timestamp": report["timestamp"],
        "n": args.n,
        "steady_speedups": {k: v["steady"]["speedup"] for k, v in engines.items()},
        "cold_speedups": {k: v["cold"]["speedup"] for k, v in engines.items()},
        "fleet_speedups": {
            f"{section}_{k}": entry["speedup"]
            for section, sizes in fleet.items()
            for k, entry in sizes.items()
        },
        "native_speedups": {
            f"{section}_{k}": entry["native_speedup"]
            for section, sizes in fleet.items()
            for k, entry in sizes.items()
            if entry["native_speedup"] is not None
        },
    }
    with HISTORY_PATH.open("a") as fh:
        fh.write(json.dumps(summary, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT_PATH} and appended {HISTORY_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
