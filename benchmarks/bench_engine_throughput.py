"""E12 — engine throughput: steps/second of the walk engines.

Not a paper claim — this is the harness's own scaling sanity check, and the
one benchmark in the suite that uses pytest-benchmark's repeated-rounds
timing the classic way.  It documents how far the engines can be pushed
toward the paper's n = 5·10⁵ grid.

Two modes:

* under pytest (``pytest benchmarks/ --benchmark-only``): the classic
  per-engine chunk benches below;
* standalone (``python benchmarks/bench_engine_throughput.py``): a
  reference-vs-array comparison on a 10k-vertex random 4-regular graph
  that writes ``benchmarks/out/BENCH_engine.json`` so the perf trajectory
  is tracked across PRs.  Steady-state throughput is the headline number
  (walks warmed past cover, so both engines step the same saturated
  state); cold numbers (fresh walk, cover bookkeeping live) are reported
  alongside.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

try:
    from conftest import ROOT_SEED
except ImportError:  # standalone: not running under pytest's rootdir
    from repro.sim.rng import DEFAULT_ROOT_SEED as ROOT_SEED

from repro.core.eprocess import EdgeProcess
from repro.engine import ArrayEdgeProcess, ArraySRW
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.rng import spawn
from repro.walks.rotor import RotorRouterWalk
from repro.walks.srw import SimpleRandomWalk

N = 20_000
DEGREE = 4
CHUNK = 50_000

#: Standalone-report configuration (the acceptance workload).
JSON_N = 10_000
JSON_CHUNK = 400_000
JSON_ROUNDS = 5
OUTPUT_PATH = Path(__file__).parent / "out" / "BENCH_engine.json"


def _graph():
    return random_connected_regular_graph(N, DEGREE, spawn(ROOT_SEED, "E12"))


def bench_srw_steps(benchmark):
    graph = _graph()
    walk = SimpleRandomWalk(graph, 0, rng=spawn(ROOT_SEED, "E12-s"))

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_eprocess_steps(benchmark):
    graph = _graph()
    walk = EdgeProcess(graph, 0, rng=spawn(ROOT_SEED, "E12-e"), record_phases=False)

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_rotor_steps(benchmark):
    graph = _graph()
    walk = RotorRouterWalk(graph, 0, rng=spawn(ROOT_SEED, "E12-r"))

    def chunk():
        walk.run(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_array_srw_steps(benchmark):
    graph = _graph()
    walk = ArraySRW(graph, 0, rng=spawn(ROOT_SEED, "E12-s"))

    def chunk():
        walk.run_chunk(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


def bench_array_eprocess_steps(benchmark):
    graph = _graph()
    walk = ArrayEdgeProcess(graph, 0, rng=spawn(ROOT_SEED, "E12-e"), record_phases=False)

    def chunk():
        walk.run_chunk(CHUNK)

    benchmark.pedantic(chunk, rounds=3, iterations=1)
    benchmark.extra_info["steps_per_round"] = CHUNK


# ----------------------------------------------------------------------
# Standalone BENCH_engine.json emitter
# ----------------------------------------------------------------------
def _steps_per_sec(make_walk, warm: bool, chunk_steps: int, rounds: int) -> float:
    """Best-of-rounds stepping throughput.

    ``warm`` measures steady state: one walk, saturated (vertex + edge
    cover plus a settling chunk) before timing, reused across rounds.
    Cold constructs a **fresh walk per round** so every round pays the
    live cover bookkeeping — reusing one walk would silently measure
    steady state from round 2 on.
    """
    best = 0.0
    walk = None
    for _ in range(rounds):
        if walk is None or not warm:
            walk = make_walk()
            if warm:
                walk.run_until_vertex_cover()
                walk.run_until_edge_cover()
                walk.run(1024)
        t0 = time.perf_counter()
        walk.run(chunk_steps)
        elapsed = time.perf_counter() - t0
        best = max(best, chunk_steps / elapsed)
    return best


def _measure_pair(make_reference, make_array, warm: bool, chunk_steps: int) -> dict:
    """Throughput of a reference/array walk pair on identical seeds."""
    ref_sps = _steps_per_sec(make_reference, warm, chunk_steps, JSON_ROUNDS)
    arr_sps = _steps_per_sec(make_array, warm, chunk_steps, JSON_ROUNDS)
    return {
        "reference_steps_per_sec": round(ref_sps),
        "array_steps_per_sec": round(arr_sps),
        "speedup": round(arr_sps / ref_sps, 2),
    }


def main() -> int:
    graph = random_connected_regular_graph(JSON_N, DEGREE, spawn(ROOT_SEED, "E12-json"))

    def srw_ref():
        return SimpleRandomWalk(graph, 0, rng=spawn(ROOT_SEED, "E12-json-s"), track_edges=True)

    def srw_arr():
        return ArraySRW(graph, 0, rng=spawn(ROOT_SEED, "E12-json-s"), track_edges=True)

    def ep_ref():
        return EdgeProcess(graph, 0, rng=spawn(ROOT_SEED, "E12-json-e"), record_phases=False)

    def ep_arr():
        return ArrayEdgeProcess(graph, 0, rng=spawn(ROOT_SEED, "E12-json-e"), record_phases=False)

    report = {
        "benchmark": "engine_throughput",
        "n": JSON_N,
        "degree": DEGREE,
        "chunk_steps": JSON_CHUNK,
        "rounds": JSON_ROUNDS,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "engines": {
            "srw": {
                "steady": _measure_pair(srw_ref, srw_arr, True, JSON_CHUNK),
                "cold": _measure_pair(srw_ref, srw_arr, False, JSON_CHUNK),
            },
            "eprocess": {
                "steady": _measure_pair(ep_ref, ep_arr, True, JSON_CHUNK),
                "cold": _measure_pair(ep_ref, ep_arr, False, JSON_CHUNK),
            },
        },
        "methodology": (
            "best-of-rounds run() throughput on one shared graph; 'steady' "
            "warms each walk past vertex+edge cover first, 'cold' starts "
            "from a fresh walk with cover bookkeeping live"
        ),
    }
    report["speedup"] = report["engines"]["srw"]["steady"]["speedup"]
    OUTPUT_PATH.parent.mkdir(exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
