"""E8 — rule-independence of Theorem 1 (ablation over rule A).

"The upper bound ... is independent of the rule A used to select unvisited
edges, even if this choice is decided on-line by an adversary."  We sweep
every built-in rule — u.a.r., deterministic label orders, per-vertex
round-robin, an adversary that homes toward the start, and a greedy
farthest-first — on the same even-degree workload.  All cover in Θ(n); the
spread between rules stays within a small constant factor.
"""

from __future__ import annotations

from conftest import ROOT_SEED

from repro.core.eprocess import EdgeProcess
from repro.core.rules import ALL_RULE_FACTORIES
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table

N = 4000
DEGREE = 4
TRIALS = 5


def _run():
    rows = []
    normalized = {}
    for rule_name in sorted(ALL_RULE_FACTORIES):
        factory = ALL_RULE_FACTORIES[rule_name]

        def walk_factory(graph, start, rng, _factory=factory):
            return EdgeProcess(graph, start, rng=rng, rule=_factory(), record_phases=False)

        run = cover_time_trials(
            workload=lambda rng: random_connected_regular_graph(N, DEGREE, rng),
            walk_factory=walk_factory,
            trials=TRIALS,
            root_seed=ROOT_SEED,
            label=f"E8-{rule_name}",
        )
        normalized[rule_name] = run.stats.mean / N
        rows.append([rule_name, run.stats.mean, run.stats.mean / N, run.stats.std])
    return rows, normalized


def bench_rule_ablation(benchmark, emit):
    rows, normalized = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["rule A", "CV(E) mean", "CV(E)/n", "std"],
        rows,
        title=f"E8 / rule-independence: E-process cover on G({N},{DEGREE}) "
        "under every rule A (incl. adversarial) stays Θ(n)",
    )
    emit("E8_rules_ablation", table)

    values = list(normalized.values())
    spread = max(values) / min(values)
    benchmark.extra_info["normalized_spread"] = round(spread, 3)
    # every rule linear-ish, and the spread between rules modest
    assert all(v < 8.0 for v in values)  # ln(4000) ≈ 8.3: all below one log
    assert spread < 3.0
