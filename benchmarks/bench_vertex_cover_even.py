"""E2 — Corollary 2: CV(E-process) = Θ(n) on random r-regular, r even ≥ 4.

Also measures the speed-up over the SRW (remark below eq. (1):
Ω(min(log n, ℓ)) on ℓ-good even-degree expanders): the E/SRW cover ratio
must grow with n.
"""

from __future__ import annotations

import math

from conftest import ROOT_SEED, eprocess_factory, srw_factory

from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.fitting import fit_normalized_profile
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table

SIZES = [1000, 2000, 4000, 8000]
DEGREES = [4, 6]
TRIALS = 5


def _run():
    rows = []
    profiles = {}
    for r in DEGREES:
        e_means, s_means = [], []
        for n in SIZES:
            workload = lambda rng, nn=n, rr=r: random_connected_regular_graph(nn, rr, rng)  # noqa: E731
            e_run = cover_time_trials(
                workload, eprocess_factory, trials=TRIALS, root_seed=ROOT_SEED,
                label=f"E2-e-r{r}-n{n}",
            )
            s_run = cover_time_trials(
                workload, srw_factory, trials=TRIALS, root_seed=ROOT_SEED,
                label=f"E2-s-r{r}-n{n}",
            )
            e_means.append(e_run.stats.mean)
            s_means.append(s_run.stats.mean)
            rows.append(
                [
                    r,
                    n,
                    e_run.stats.mean / n,
                    s_run.stats.mean / (n * math.log(n)),
                    s_run.stats.mean / e_run.stats.mean,
                ]
            )
        profiles[r] = (
            fit_normalized_profile(SIZES, e_means),
            fit_normalized_profile(SIZES, s_means),
        )
    return rows, profiles


def bench_vertex_cover_even_degrees(benchmark, emit):
    rows, profiles = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["r", "n", "CV(E)/n", "CV(SRW)/(n ln n)", "speedup SRW/E"],
        rows,
        title="E2 / Corollary 2: E-process is Θ(n), SRW is Θ(n ln n), "
        "speed-up grows like ln n (even r)",
    )
    emit("E2_vertex_cover_even", table)

    for r, (e_profile, s_profile) in profiles.items():
        benchmark.extra_info[f"r{r}_E_slope"] = round(e_profile.slope, 4)
        benchmark.extra_info[f"r{r}_SRW_slope"] = round(s_profile.slope, 4)
        # E-process normalized profile flat (Θ(n)); the SRW slope estimate is
        # noisy at 5 trials (its constant is still settling toward the
        # (r-1)/(r-2) asymptote), so it is reported, not asserted.
        assert abs(e_profile.slope) < 0.25

    by_r = {r: [row for row in rows if row[0] == r] for r in DEGREES}
    for r in DEGREES:
        # E-process: CV/n in a tight band (Corollary 2's Θ(n))
        e_norm = [row[2] for row in by_r[r]]
        assert max(e_norm) / min(e_norm) < 1.3
        # SRW: CV/(n ln n) bounded above and below (Θ(n ln n))
        s_norm = [row[3] for row in by_r[r]]
        assert all(0.5 < x < 3.0 for x in s_norm)
        # speed-up at the Ω(log n) scale everywhere on the grid
        speedups = [row[4] for row in by_r[r]]
        assert all(s > 3.0 for s in speedups)
