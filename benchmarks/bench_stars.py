"""E10 — Section 5: isolated blue stars and the odd-degree log factor.

The paper's heuristic: on random 3-regular graphs the blue walk leaves
``|I| ≈ n/8`` isolated blue stars behind; coupon-collecting them costs the
red walk Ω(n log n).  We measure the *cumulative* star census (every vertex
that ever becomes a star centre) for r = 3 and the cover time split
(red steps vs blue steps) for odd and even degrees.

Reproduction note recorded in EXPERIMENTS.md: the measured cumulative
fraction is ≈ 0.05n, below the 1/8 independence heuristic, because the
interleaved red walk rescues some candidate vertices before their stars
complete — the heuristic ignores those re-visits.  The qualitative claim
(Θ(n) stragglers ⇒ Ω(n log n) cover for odd r) stands.
"""

from __future__ import annotations

from conftest import ROOT_SEED

from repro.core.eprocess import EdgeProcess
from repro.core.stars import (
    cumulative_star_census,
    expected_isolated_stars,
    passed_over_vertices,
)
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.results import aggregate
from repro.sim.rng import spawn
from repro.sim.tables import format_table

SIZES = [1000, 2000, 4000]
TRIALS = 3


def _census(n, r, trials):
    counts = []
    covers = []
    passed = []
    for t in range(trials):
        rng = spawn(ROOT_SEED, "E10", n, r, t)
        graph = random_connected_regular_graph(n, r, rng)
        walk = EdgeProcess(graph, rng.randrange(n), rng=rng, record_phases=False)
        result = cumulative_star_census(walk)
        counts.append(result.count)
        covers.append(result.cover_steps)
        passed.append(len(passed_over_vertices(walk)))
    return aggregate(counts), aggregate(covers), aggregate(passed)


def _run():
    rows = []
    fractions = []
    for n in SIZES:
        stars, covers, passed = _census(n, 3, TRIALS)
        heuristic = expected_isolated_stars(n, 3)
        fractions.append(stars.mean / n)
        rows.append(
            [n, stars.mean, passed.mean, heuristic, stars.mean / n, covers.mean / n]
        )
    # contrast: r = 4 leaves no stars at all (Observation 10)
    even_stars, even_covers, even_passed = _census(2000, 4, TRIALS)
    rows.append(
        [2000, even_stars.mean, even_passed.mean, 0.0, even_stars.mean / 2000,
         even_covers.mean / 2000]
    )
    return rows, fractions, even_stars.mean


def bench_isolated_stars(benchmark, emit):
    rows, fractions, even_mean = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["n", "|I| measured", "passed-over", "n/8 heuristic", "|I|/n", "CV/n"],
        rows,
        title="E10 / Section 5: cumulative isolated-star census on random "
        "3-regular graphs (last row: 4-regular control — passed-over events "
        "still occur but parity strands nothing)",
    )
    emit("E10_stars", table)

    # Θ(n) stragglers: fraction stable across n and bounded away from 0
    assert all(0.02 < f < 0.125 for f in fractions)
    assert max(fractions) / min(fractions) < 2.0
    # even-degree control leaves exactly zero stars
    assert even_mean == 0.0
    benchmark.extra_info["star_fraction"] = round(sum(fractions) / len(fractions), 4)
