"""E3 — Theorem 5: every weighted random walk has CV ≥ (n/4) ln(n/2).

Measured: SRW and two weighted walks (random weights, adversarially skewed
weights) on even-degree expanders and cycles, against the Radzik floor and
the exact KKLV bound the proof uses.  The E-process — not a reversible
walk — drops *below* the floor on the same workload, which is the paper's
whole point.
"""

from __future__ import annotations

from conftest import ROOT_SEED, eprocess_factory

from repro.core.bounds import radzik_lower_bound
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.rng import spawn
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table
from repro.spectral.hitting import best_kklv_lower_bound
from repro.walks.srw import SimpleRandomWalk, WeightedRandomWalk

TRIALS = 3
N_REGULAR = 12_000  # large enough that the floor exceeds the E-process's ~2n
N_EXACT = 600       # small enough for exact commute times


def _weighted_factory(kind):
    def factory(graph, start, rng):
        if kind == "uniform":
            weights = [1.0] * graph.m
        elif kind == "random":
            weights = [rng.uniform(0.5, 2.0) for _ in range(graph.m)]
        else:  # skewed: heavy low-id edges
            weights = [10.0 if eid % 7 == 0 else 1.0 for eid in range(graph.m)]
        return WeightedRandomWalk(graph, start, weights=weights, rng=rng)

    return factory


def _run():
    rows = []
    # (a) reversible walks respect the floor on a large 4-regular graph
    workload = lambda rng: random_connected_regular_graph(N_REGULAR, 4, rng)  # noqa: E731
    floor = radzik_lower_bound(N_REGULAR)
    for kind in ("uniform", "random", "skewed"):
        run = cover_time_trials(
            workload,
            _weighted_factory(kind),
            trials=TRIALS,
            root_seed=ROOT_SEED,
            label=f"E3-{kind}",
        )
        rows.append([f"G({N_REGULAR},4)", f"weighted:{kind}", run.stats.mean, floor, run.stats.mean / floor])
    # (b) the E-process breaks the floor on the same workload
    e_run = cover_time_trials(
        workload, eprocess_factory, trials=TRIALS, root_seed=ROOT_SEED, label="E3-eprocess"
    )
    rows.append([f"G({N_REGULAR},4)", "E-process", e_run.stats.mean, floor, e_run.stats.mean / floor])

    # (c) exact KKLV bound (proof machinery) vs measured SRW on a small graph
    g_small = random_connected_regular_graph(N_EXACT, 4, spawn(ROOT_SEED, "E3-exact"))
    kklv = best_kklv_lower_bound(g_small)
    run = cover_time_trials(
        g_small,
        lambda graph, start, rng: SimpleRandomWalk(graph, start, rng=rng),
        trials=TRIALS,
        root_seed=ROOT_SEED,
        label="E3-kklv",
    )
    rows.append([f"G({N_EXACT},4)", "SRW vs exact KKLV", run.stats.mean, kklv, run.stats.mean / kklv])
    return rows


def bench_theorem5_lower_bound(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["graph", "walk", "measured CV", "lower bound", "ratio"],
        rows,
        title="E3 / Theorem 5: reversible walks sit above (n/4) ln(n/2); "
        "the E-process drops below it",
        float_digits=1,
    )
    emit("E3_lower_bound", table)

    reversible = [row for row in rows if row[1].startswith(("weighted", "SRW"))]
    for row in reversible:
        assert row[4] >= 1.0, f"{row[1]} violated its lower bound"
    eprocess_row = next(row for row in rows if row[1] == "E-process")
    assert eprocess_row[4] < 1.0, "E-process failed to beat the reversible floor"
    benchmark.extra_info["eprocess_vs_floor"] = round(eprocess_row[4], 3)
