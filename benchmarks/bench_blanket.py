"""E11 — eq. (4): CE(E-process) = O(m + CV(SRW)) via blanket time.

The paper's route: once the SRW has visited every vertex v at least d(v)
times, the E-process must have explored every edge; by Ding–Lee–Peres the
time T(r) to do that is O(CV(SRW)).  We measure T(r) directly (time for
the SRW to visit every vertex r times) and compare it with CV(SRW), then
check the resulting eq. (4) bound against the measured CE(E-process).
"""

from __future__ import annotations

from conftest import ROOT_SEED, eprocess_factory

from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.results import aggregate
from repro.sim.rng import spawn
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table
from repro.walks.srw import SimpleRandomWalk

SIZES = [500, 1000, 2000, 4000]
DEGREE = 4
TRIALS = 3


def _time_to_visit_all_r_times(graph, start, rng, r, budget):
    """Steps until every vertex has been visited at least ``r`` times."""
    walk = SimpleRandomWalk(graph, start, rng=rng)
    counts = [0] * graph.n
    counts[start] = 1
    satisfied = sum(1 for c in counts if c >= r)  # start may satisfy r == 1
    while satisfied < graph.n and walk.steps < budget:
        v = walk.step()
        counts[v] += 1
        if counts[v] == r:
            satisfied += 1
    return walk.steps


def _run():
    rows = []
    for n in SIZES:
        graph = random_connected_regular_graph(n, DEGREE, spawn(ROOT_SEED, "E11-g", n))
        cv = cover_time_trials(
            graph,
            lambda g, s, rng: SimpleRandomWalk(g, s, rng=rng),
            trials=TRIALS,
            root_seed=ROOT_SEED,
            label=f"E11-cv-{n}",
        )
        t_r_samples = []
        for t in range(TRIALS):
            rng = spawn(ROOT_SEED, "E11-tr", n, t)
            t_r_samples.append(
                _time_to_visit_all_r_times(
                    graph, rng.randrange(n), rng, DEGREE, budget=100 * n * 20
                )
            )
        t_r = aggregate(t_r_samples)
        ce = cover_time_trials(
            graph, eprocess_factory, trials=TRIALS, root_seed=ROOT_SEED,
            target="edges", label=f"E11-ce-{n}",
        )
        rows.append(
            [
                n,
                cv.stats.mean,
                t_r.mean,
                t_r.mean / cv.stats.mean,
                ce.stats.mean,
                graph.m + cv.stats.mean,
            ]
        )
    return rows


def bench_blanket_time_bound(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["n", "CV(SRW)", "T(r): all v seen r times", "T(r)/CV", "CE(E)", "m + CV(SRW)"],
        rows,
        title="E11 / eq.(4): blanket-style time T(r) is O(CV(SRW)); "
        "CE(E-process) sits inside m + O(CV(SRW))",
        float_digits=1,
    )
    emit("E11_blanket", table)

    # T(r)/CV bounded by a constant across sizes (blanket-time claim)
    ratios = [row[3] for row in rows]
    assert all(r < 6.0 for r in ratios)
    # CE within the eq.(4) envelope (constant 2 absorbs sampling noise)
    for row in rows:
        assert row[4] <= 2.0 * row[5]
    benchmark.extra_info["max_Tr_over_CV"] = round(max(ratios), 3)
