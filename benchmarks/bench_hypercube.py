"""E7 — the hypercube example after eq. (3):

``CE(E-process on H_r) = Θ(n log n)`` versus ``CE(SRW) = Θ(n log² n)``,
i.e. the E-process saves a full log factor on edge cover; eq. (2)'s bound
(O(n log² n) via the gap 2/log n) is *not* tight here, eq. (3) is.
"""

from __future__ import annotations

import math

from conftest import ROOT_SEED, eprocess_factory, srw_edge_factory

from repro.graphs.generators import hypercube_graph
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table

RS = [6, 8, 10]  # even r keeps the graphs in the even-degree class
TRIALS = 3


def _run():
    rows = []
    ratios = []
    for r in RS:
        graph = hypercube_graph(r)
        n, m = graph.n, graph.m
        e_run = cover_time_trials(
            graph, eprocess_factory, trials=TRIALS, root_seed=ROOT_SEED,
            target="edges", label=f"E7-e-{r}",
        )
        s_run = cover_time_trials(
            graph, srw_edge_factory, trials=TRIALS, root_seed=ROOT_SEED,
            target="edges", label=f"E7-s-{r}",
        )
        log_n = math.log(n)
        ratios.append(s_run.stats.mean / e_run.stats.mean)
        rows.append(
            [
                f"H_{r}",
                n,
                m,
                e_run.stats.mean / (n * log_n),
                s_run.stats.mean / (n * log_n * log_n),
                s_run.stats.mean / e_run.stats.mean,
            ]
        )
    return rows, ratios


def bench_hypercube_edge_cover(benchmark, emit):
    rows, ratios = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["graph", "n", "m", "CE(E)/(n ln n)", "CE(SRW)/(n ln^2 n)", "SRW/E ratio"],
        rows,
        title="E7 / hypercube: E-process edge cover Θ(n log n) vs SRW "
        "Θ(n log² n) — both normalized columns flat, ratio grows like ln n",
    )
    emit("E7_hypercube", table)

    # normalized columns flat-ish (Θ checks), ratio strictly growing
    e_norm = [row[3] for row in rows]
    s_norm = [row[4] for row in rows]
    assert max(e_norm) / min(e_norm) < 2.0
    assert max(s_norm) / min(s_norm) < 2.0
    assert ratios == sorted(ratios), "SRW/E ratio should grow with r"
    benchmark.extra_info["ratio_H10"] = round(ratios[-1], 3)
