"""E13 — context: the workload of Avin–Krishnamachari [3].

The RWC(d) baseline was evaluated on geometric random graphs and toroidal
grids; we close the loop by running RWC(2), the SRW, and the E-process on
a connected random geometric graph (note: RGGs are irregular with
odd-degree vertices, so the E-process runs without any of the paper's
guarantees).

Expected — and measured — shape: both choice-based processes beat the
SRW; between them, *vertex*-greedy RWC(2) beats the *edge*-greedy
E-process, because on a dense workload (average degree ≈ 23, m ≈ 11.5n)
the E-process spends its blue steps exhausting local cliques edge by
edge.  This is the flip side of the paper's sparse-graph story: the
E-process's Θ(n) guarantee is a bounded-degree, even-degree phenomenon.
"""

from __future__ import annotations

from conftest import ROOT_SEED, eprocess_factory, srw_factory

from repro.graphs.geometric import connectivity_radius, random_geometric_graph
from repro.graphs.properties import is_connected
from repro.sim.rng import spawn
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table
from repro.walks.choice import RandomWalkWithChoice

N = 2000
TRIALS = 3


def _connected_rgg():
    radius = connectivity_radius(N, constant=3.0)
    for attempt in range(50):
        graph = random_geometric_graph(N, radius, spawn(ROOT_SEED, "E13-g", attempt))
        if is_connected(graph):
            return graph
    raise AssertionError("no connected RGG sample in 50 attempts")


def _run():
    graph = _connected_rgg()
    walks = [
        ("E-process", eprocess_factory),
        ("SRW", srw_factory),
        ("RWC(2)", lambda g, s, rng: RandomWalkWithChoice(g, s, d=2, rng=rng)),
    ]
    rows = []
    means = {}
    for name, factory in walks:
        run = cover_time_trials(
            graph, factory, trials=TRIALS, root_seed=ROOT_SEED,
            max_steps=2000 * graph.n, label=f"E13-{name}",
        )
        means[name] = run.stats.mean
        rows.append([name, graph.n, graph.m, run.stats.mean, run.stats.mean / graph.n])
    return rows, means


def bench_geometric_workload(benchmark, emit):
    rows, means = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["process", "n", "m", "CV mean", "CV/n"],
        rows,
        title="E13 / [3]'s workload: vertex cover on a connected random "
        "geometric graph (unit torus, radius at 3x connectivity threshold)",
        float_digits=1,
    )
    emit("E13_geometric", table)

    assert means["RWC(2)"] < means["SRW"]        # [3]'s reported effect
    assert means["E-process"] < means["SRW"]     # edge-greed still beats blind
    # on this dense irregular workload the vertex-greedy walk wins the
    # head-to-head (see module docstring) — record, don't hide, the ordering
    benchmark.extra_info["rwc2_over_eprocess"] = round(
        means["E-process"] / means["RWC(2)"], 2
    )
    benchmark.extra_info["eprocess_over_srw"] = round(
        means["SRW"] / means["E-process"], 2
    )
