"""E4 — eq. (3) / Observation 12: m ≤ CE(E-process) ≤ m + CV(SRW).

Measured across the even-degree families the paper's analysis covers:
random regular graphs, the toroidal grid (poor expander), the hypercube
(log-degree), and an LPS Ramanujan expander (high girth).
"""

from __future__ import annotations

from conftest import ROOT_SEED, eprocess_factory, srw_factory

from repro.graphs.generators import hypercube_graph, torus_grid
from repro.graphs.ramanujan import lps_graph
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.rng import spawn
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table

TRIALS = 5


def _families():
    return [
        ("G(2000,4)", random_connected_regular_graph(2000, 4, spawn(ROOT_SEED, "E4-g"))),
        ("G(2000,6)", random_connected_regular_graph(2000, 6, spawn(ROOT_SEED, "E4-g6"))),
        ("T_32x32", torus_grid(32, 32)),
        ("H_8", hypercube_graph(8)),
        ("X^{5,13}", lps_graph(5, 13)),
    ]


def _run():
    rows = []
    for name, graph in _families():
        ce = cover_time_trials(
            graph, eprocess_factory, trials=TRIALS, root_seed=ROOT_SEED,
            target="edges", label=f"E4-ce-{name}",
        )
        cv_srw = cover_time_trials(
            graph, srw_factory, trials=TRIALS, root_seed=ROOT_SEED,
            label=f"E4-cv-{name}",
        )
        rows.append(
            [
                name,
                graph.m,
                ce.stats.mean,
                graph.m + cv_srw.stats.mean,
                ce.stats.minimum,
                (ce.stats.mean - graph.m) / max(cv_srw.stats.mean, 1.0),
            ]
        )
    return rows


def bench_edge_cover_sandwich(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["graph", "m (lower)", "CE(E) mean", "m + CV(SRW) (upper)", "CE(E) min", "slack used"],
        rows,
        title="E4 / eq.(3): m <= CE(E-process) <= m + CV(SRW) on even-degree families",
        float_digits=1,
    )
    emit("E4_edge_cover_sandwich", table)

    for name, m, ce_mean, upper, ce_min, _slack in rows:
        assert ce_min >= m, f"{name}: CE < m (impossible)"
        # sampling slack on the expectation-level upper bound
        assert ce_mean <= upper * 1.25, f"{name}: CE above the eq.(3) sandwich"
    benchmark.extra_info["families"] = len(rows)
