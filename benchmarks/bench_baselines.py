"""E9 — context baselines: the processes the paper positions itself against.

Vertex cover time on one even-degree expander (G(n,4)) and one poor
expander (toroidal grid) for: the E-process, the SRW, the rotor-router
([16], O(mD)), RWC(2) ([3]), the unvisited-vertex V-process, and the
locally fair walks of [5] (Least-Used-First O(mD); Oldest-First — the one
that can be exponentially bad).
"""

from __future__ import annotations

from conftest import ROOT_SEED, eprocess_factory, srw_factory

from repro.errors import CoverTimeout
from repro.graphs.generators import torus_grid
from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.rng import spawn
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_table
from repro.walks.choice import RandomWalkWithChoice, UnvisitedVertexWalk
from repro.walks.fair import LeastUsedFirstWalk, OldestFirstWalk
from repro.walks.rotor import RotorRouterWalk

TRIALS = 3
N_REGULAR = 2048
TORUS_SIDE = 40  # n = 1600

WALKS = [
    ("E-process", eprocess_factory),
    ("SRW", srw_factory),
    ("rotor-router", lambda g, s, rng: RotorRouterWalk(g, s, rng=rng, randomize_rotors=True)),
    ("RWC(2)", lambda g, s, rng: RandomWalkWithChoice(g, s, d=2, rng=rng)),
    ("V-process", lambda g, s, rng: UnvisitedVertexWalk(g, s, rng=rng)),
    ("least-used-first", lambda g, s, rng: LeastUsedFirstWalk(g, s, rng=rng)),
    ("oldest-first", lambda g, s, rng: OldestFirstWalk(g, s, rng=rng)),
]


def _run():
    workloads = [
        ("G(2048,4)", random_connected_regular_graph(N_REGULAR, 4, spawn(ROOT_SEED, "E9-g"))),
        (f"T_{TORUS_SIDE}x{TORUS_SIDE}", torus_grid(TORUS_SIDE, TORUS_SIDE)),
    ]
    rows = []
    summary = {}
    for wname, graph in workloads:
        budget = 400 * graph.n * max(1, graph.n.bit_length())
        for pname, factory in WALKS:
            try:
                run = cover_time_trials(
                    graph, factory, trials=TRIALS, root_seed=ROOT_SEED,
                    max_steps=budget, label=f"E9-{wname}-{pname}",
                )
                mean = run.stats.mean
                rows.append([wname, pname, mean, mean / graph.n])
                summary[(wname, pname)] = mean
            except CoverTimeout:
                rows.append([wname, pname, float("nan"), float("nan")])
                summary[(wname, pname)] = None
    return rows, summary


def bench_baseline_processes(benchmark, emit):
    rows, summary = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["graph", "process", "CV mean", "CV/n"],
        rows,
        title="E9 / baselines: vertex cover times of every process in the "
        "paper's related-work discussion",
        float_digits=1,
    )
    emit("E9_baselines", table)

    # headline orderings on the expander
    g = "G(2048,4)"
    assert summary[(g, "E-process")] < summary[(g, "SRW")]
    assert summary[(g, "V-process")] < summary[(g, "SRW")]
    benchmark.extra_info["expander_speedup"] = round(
        summary[(g, "SRW")] / summary[(g, "E-process")], 2
    )
