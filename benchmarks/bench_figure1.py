"""E1 — Figure 1: normalized E-process cover time on d-regular graphs.

Paper series: ``E d=3 [0.93 n ln(n)]``, ``E d=4`` (flat), ``E d=5
[0.41 n ln(n)]``, ``E d=6`` (flat), ``E d=7 [0.38 n ln(n)]``; each data
point an average of five experiments, unvisited edges chosen u.a.r.

This harness declares the full figure as a :class:`SweepSpec` and runs it
through the experiment store under ``benchmarks/out/store`` — a first run
computes all trials, subsequent runs (or a run interrupted and restarted)
reuse every completed trial and only fill the gaps.  Tables and fits are
rebuilt purely from the store.
"""

from __future__ import annotations

from conftest import ROOT_SEED, STORE_DIR

from repro.experiments import (
    ResultStore,
    SweepSpec,
    regular_degree_series,
    run_sweep,
    sweep_runs_from_store,
)
from repro.sim.fitting import fit_normalized_profile, select_growth_model
from repro.sim.tables import format_series_table, format_table

SIZES = [1000, 2000, 4000, 8000, 16000]
DEGREES = [3, 4, 5, 6, 7]
TRIALS = 5  # matches the paper's "average of five actual experiments"

SWEEP = SweepSpec.figure1(sizes=SIZES, degrees=DEGREES, trials=TRIALS, root_seed=ROOT_SEED)


def _run_figure1():
    store = ResultStore(STORE_DIR)
    result = run_sweep(SWEEP, store=store)
    runs = sweep_runs_from_store(store, SWEEP)  # tables come from the store alone
    series = regular_degree_series(runs, normalize_by_n=True)
    by_degree = {}
    for spec, run in runs:
        by_degree.setdefault(spec.params["degree"], []).append(
            (spec.params["n"], run.stats.mean)
        )
    fits = []
    for d in DEGREES:
        pairs = sorted(by_degree[d])
        ns = [n for n, _ in pairs]
        raw_means = [mean for _, mean in pairs]
        winner, linear_fit, nlogn_fit = select_growth_model(ns, raw_means)
        profile = fit_normalized_profile(ns, raw_means)
        fits.append((d, winner, linear_fit, nlogn_fit, profile))
    return series, fits, result


def bench_figure1(benchmark, emit):
    series, fits, result = benchmark.pedantic(_run_figure1, rounds=1, iterations=1)

    table = format_series_table(
        series,
        x_header="n",
        title="E1 / Figure 1: normalized cover time C_V / n of the E-process "
        "(d-regular random graphs, u.a.r. rule, 5 trials per point)",
    )
    fit_rows = []
    paper_constants = {3: 0.93, 4: None, 5: 0.41, 6: None, 7: 0.38}
    for d, winner, linear_fit, nlogn_fit, profile in fits:
        paper = paper_constants[d]
        fit_rows.append(
            [
                f"d={d}",
                winner,
                nlogn_fit.constant,
                "flat" if paper is None else f"{paper:.2f} n ln n",
                profile.slope,
            ]
        )
    fits_table = format_table(
        ["series", "best model", "fit c (c*n*ln n)", "paper", "profile slope b"],
        fit_rows,
        title="Growth fits: y/n = a + b ln n; paper reports b≈0 for d=4,6 and "
        "c = 0.93 / 0.41 / 0.38 for d = 3 / 5 / 7",
    )
    emit("E1_figure1", table + "\n\n" + fits_table)

    benchmark.extra_info["trials_scheduled"] = result.scheduled
    benchmark.extra_info["trials_cached"] = result.cached
    for d, winner, _lin, nlogn_fit, profile in fits:
        benchmark.extra_info[f"d{d}_model"] = winner
        benchmark.extra_info[f"d{d}_nlogn_c"] = round(nlogn_fit.constant, 4)
        benchmark.extra_info[f"d{d}_profile_slope"] = round(profile.slope, 4)

    # Paper-shape assertions: even degrees linear, odd degrees n log n with
    # the constants ordered as in Figure 1.
    models = {d: winner for d, winner, *_ in fits}
    assert models[4] == "linear" and models[6] == "linear"
    assert models[3] == "nlogn"
    constants = {d: fit.constant for d, _w, _l, fit, _p in fits}
    assert constants[3] > constants[5] > constants[7]
