"""E1 — Figure 1: normalized E-process cover time on d-regular graphs.

Paper series: ``E d=3 [0.93 n ln(n)]``, ``E d=4`` (flat), ``E d=5
[0.41 n ln(n)]``, ``E d=6`` (flat), ``E d=7 [0.38 n ln(n)]``; each data
point an average of five experiments, unvisited edges chosen u.a.r.

This harness reproduces the full figure at a scaled n-grid and re-derives
the fitted constants; expected shape: flat rows for d = 4, 6, logarithmic
growth for d = 3, 5, 7 with fitted constants ordered c(3) > c(5) > c(7).
"""

from __future__ import annotations

from conftest import ROOT_SEED, eprocess_factory

from repro.graphs.random_regular import random_connected_regular_graph
from repro.sim.fitting import fit_normalized_profile, select_growth_model
from repro.sim.results import Series, SweepPoint
from repro.sim.runner import cover_time_trials
from repro.sim.tables import format_series_table, format_table

SIZES = [1000, 2000, 4000, 8000, 16000]
DEGREES = [3, 4, 5, 6, 7]
TRIALS = 5  # matches the paper's "average of five actual experiments"


def _run_figure1():
    series = []
    fits = []
    for d in DEGREES:
        points = []
        raw_means = []
        for n in SIZES:
            adjusted = n if (n * d) % 2 == 0 else n + 1
            run = cover_time_trials(
                workload=lambda rng, nn=adjusted, dd=d: random_connected_regular_graph(
                    nn, dd, rng
                ),
                walk_factory=eprocess_factory,
                trials=TRIALS,
                root_seed=ROOT_SEED,
                label=f"E1-d{d}-n{adjusted}",
            )
            raw_means.append(run.stats.mean)
            points.append(SweepPoint(x=adjusted, stats=run.stats.scaled(1.0 / adjusted)))
        series.append(Series(label=f"E d={d}", points=points))
        winner, linear_fit, nlogn_fit = select_growth_model(SIZES, raw_means)
        profile = fit_normalized_profile(SIZES, raw_means)
        fits.append((d, winner, linear_fit, nlogn_fit, profile))
    return series, fits


def bench_figure1(benchmark, emit):
    series, fits = benchmark.pedantic(_run_figure1, rounds=1, iterations=1)

    table = format_series_table(
        series,
        x_header="n",
        title="E1 / Figure 1: normalized cover time C_V / n of the E-process "
        "(d-regular random graphs, u.a.r. rule, 5 trials per point)",
    )
    fit_rows = []
    paper_constants = {3: 0.93, 4: None, 5: 0.41, 6: None, 7: 0.38}
    for d, winner, linear_fit, nlogn_fit, profile in fits:
        paper = paper_constants[d]
        fit_rows.append(
            [
                f"d={d}",
                winner,
                nlogn_fit.constant,
                "flat" if paper is None else f"{paper:.2f} n ln n",
                profile.slope,
            ]
        )
    fits_table = format_table(
        ["series", "best model", "fit c (c*n*ln n)", "paper", "profile slope b"],
        fit_rows,
        title="Growth fits: y/n = a + b ln n; paper reports b≈0 for d=4,6 and "
        "c = 0.93 / 0.41 / 0.38 for d = 3 / 5 / 7",
    )
    emit("E1_figure1", table + "\n\n" + fits_table)

    for d, winner, _lin, nlogn_fit, profile in fits:
        benchmark.extra_info[f"d{d}_model"] = winner
        benchmark.extra_info[f"d{d}_nlogn_c"] = round(nlogn_fit.constant, 4)
        benchmark.extra_info[f"d{d}_profile_slope"] = round(profile.slope, 4)

    # Paper-shape assertions: even degrees linear, odd degrees n log n with
    # the constants ordered as in Figure 1.
    models = {d: winner for d, winner, *_ in fits}
    assert models[4] == "linear" and models[6] == "linear"
    assert models[3] == "nlogn"
    constants = {d: fit.constant for d, _w, _l, fit, _p in fits}
    assert constants[3] > constants[5] > constants[7]
