#!/usr/bin/env python3
"""The hypercube example: a full log factor saved on edge cover.

After eq. (3) the paper works the hypercube H_r (n = 2^r, degree r):

* SRW edge cover:        Θ(m log m)  =  Θ(n log² n)
* E-process edge cover:  m + C_V(SRW) = Θ(n log n)
* eq. (2)'s gap-based bound would only give O(n log² n) — the sandwich
  eq. (3) is the tight tool here.

This example measures all three quantities for growing r and prints the
eq. (3) sandwich next to the measured values.

Run:  python examples/hypercube_edge_cover.py
"""

import math

from repro import (
    EdgeProcess,
    SimpleRandomWalk,
    cover_time_trials,
    edge_cover_sandwich,
    grw_edge_cover_bound,
    hypercube_graph,
    spectral_gap,
)
from repro.sim.tables import format_table

RS = [4, 6, 8, 10]
TRIALS = 3


def main() -> None:
    rows = []
    for r in RS:
        graph = hypercube_graph(r)
        n, m = graph.n, graph.m
        e_run = cover_time_trials(
            graph,
            lambda g, s, rng: EdgeProcess(g, s, rng=rng, record_phases=False),
            trials=TRIALS, root_seed=1024, target="edges", label=f"hc-e-{r}",
        )
        srw_vertex = cover_time_trials(
            graph,
            lambda g, s, rng: SimpleRandomWalk(g, s, rng=rng),
            trials=TRIALS, root_seed=1024, label=f"hc-cv-{r}",
        )
        srw_edge = cover_time_trials(
            graph,
            lambda g, s, rng: SimpleRandomWalk(g, s, rng=rng, track_edges=True),
            trials=TRIALS, root_seed=1024, target="edges", label=f"hc-ce-{r}",
        )
        low, high = edge_cover_sandwich(m, srw_vertex.stats.mean)
        eq2 = grw_edge_cover_bound(m, n, spectral_gap(graph, lazy=True))
        rows.append(
            [
                f"H_{r}",
                n,
                m,
                e_run.stats.mean,
                f"[{low:.0f}, {high:.0f}]",
                srw_edge.stats.mean,
                srw_edge.stats.mean / e_run.stats.mean,
                math.log(n),
                eq2,
            ]
        )
    print(
        format_table(
            ["graph", "n", "m", "CE(E)", "eq.(3) sandwich", "CE(SRW)", "SRW/E", "ln n", "eq.(2) bound"],
            rows,
            title="Edge cover on hypercubes: the E-process saves the SRW's "
            "extra log factor (SRW/E tracks ln n); eq.(2) is loose here",
            float_digits=1,
        )
    )


if __name__ == "__main__":
    main()
