#!/usr/bin/env python3
"""Section 5: why odd degrees cost a log factor — isolated blue stars.

On random 3-regular graphs the unvisited-edge ("blue") walk strands
vertices at the centres of isolated blue stars; mopping them up is a
coupon-collector problem for the embedded random walk, which is the
paper's intuition for the Ω(n log n) cover time at odd degree.

This example measures, per n:

* the cumulative star census |I| (every vertex that ever becomes a star
  centre) against the paper's n/8 independence heuristic — measured values
  run lower (≈ 0.05 n) because the interleaved red walk rescues candidates
  before their stars complete;
* the tail share: the fraction of the whole cover time spent visiting the
  last 1% of vertices (large for d=3, small for d=4).

Run:  python examples/odd_degree_stars.py
"""

from repro import EdgeProcess, random_connected_regular_graph, spawn
from repro.core.stars import (
    cumulative_star_census,
    expected_isolated_stars,
    passed_over_vertices,
)
from repro.sim.profiles import record_profile
from repro.sim.tables import format_table

SIZES = [1000, 2000, 4000]
TRIALS = 3


def census_row(n: int, r: int):
    counts, covers, passed = [], [], []
    for t in range(TRIALS):
        rng = spawn(31337, "stars", n, r, t)
        graph = random_connected_regular_graph(n, r, rng)
        walk = EdgeProcess(graph, rng.randrange(n), rng=rng, record_phases=False)
        result = cumulative_star_census(walk)
        counts.append(result.count)
        covers.append(result.cover_steps)
        passed.append(len(passed_over_vertices(walk)))
    mean_count = sum(counts) / TRIALS
    mean_cover = sum(covers) / TRIALS
    heuristic = expected_isolated_stars(n, r) if r % 2 else 0.0
    return [
        f"G({n},{r})",
        mean_count,
        sum(passed) / TRIALS,
        heuristic,
        mean_count / n,
        mean_cover / n,
    ]


def tail_row(n: int, r: int):
    rng = spawn(31337, "tail", n, r)
    graph = random_connected_regular_graph(n, r, rng)
    walk = EdgeProcess(graph, 0, rng=rng, record_phases=False)
    profile = record_profile(walk)
    return [f"G({n},{r})", profile.vertex_cover_step, profile.half_cover_step,
            profile.tail_fraction(n)]


def main() -> None:
    rows = [census_row(n, 3) for n in SIZES]
    rows.append(census_row(2000, 4))  # even-degree control: zero stars
    print(
        format_table(
            ["graph", "|I| measured", "passed-over", "n/8 heuristic", "|I|/n", "cover/n"],
            rows,
            title="Cumulative isolated-star census (Section 5); last row is "
            "the even-degree control — passed-over events still occur there "
            "but parity strands nothing",
        )
    )
    print()
    tails = [tail_row(4000, 3), tail_row(4000, 4)]
    print(
        format_table(
            ["graph", "cover step", "half-cover step", "tail share (last 1%)"],
            tails,
            title="Where the time goes: the d=3 walk spends a large share of "
            "its run collecting the final stragglers",
        )
    )


if __name__ == "__main__":
    main()
