#!/usr/bin/env python3
"""Rule A does not matter — even when it is an adversary.

Theorem 1's bound is independent of how the E-process picks among unvisited
edges: "the rule could be deterministic, or decided on-line by an
adversary".  This example runs the same even-degree workload under every
built-in rule plus a custom spiteful rule written inline with
``CallableRule`` (it always walks toward the most-recently-visited region),
and shows all of them covering in Θ(n).

Run:  python examples/adversarial_rules.py [n]
"""

import sys

from repro import (
    ALL_RULE_FACTORIES,
    CallableRule,
    EdgeProcess,
    cover_time_trials,
    random_connected_regular_graph,
    spawn,
)
from repro.sim.tables import format_table


def revisit_seeker(vertex, candidates, process):
    """A custom adversary: prefer the unvisited edge whose far endpoint was
    visited most recently (drag the walk back into explored territory)."""
    def recency(cand):
        _eid, w = cand
        t = process.first_visit_time[w]
        return t if t >= 0 else -1  # unvisited endpoints last

    return max(candidates, key=recency)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    graph = random_connected_regular_graph(n, 4, spawn(42, "adv-graph", n))

    rules = dict(ALL_RULE_FACTORIES)
    rules["revisit-seeker (custom)"] = lambda: CallableRule(revisit_seeker, name="revisit-seeker")

    rows = []
    for name in sorted(rules):
        factory = rules[name]
        run = cover_time_trials(
            graph,
            lambda g, s, rng, f=factory: EdgeProcess(g, s, rng=rng, rule=f(), record_phases=False),
            trials=3,
            root_seed=42,
            label=f"adv-{name}",
        )
        rows.append([name, run.stats.mean, run.stats.mean / n])

    print(
        format_table(
            ["rule A", "mean cover time", "cover / n"],
            rows,
            title=f"E-process cover time on G({n},4) under every rule A "
            f"(ln n = {__import__('math').log(n):.2f}; all rows sit near 2, "
            "far below one log factor)",
        )
    )


if __name__ == "__main__":
    main()
