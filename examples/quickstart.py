#!/usr/bin/env python3
"""Quickstart: the E-process vs the simple random walk in 60 seconds.

Builds a random 4-regular graph (the paper's flagship even-degree
workload), runs both walks to vertex cover, verifies the paper's
structural Observations on the live run, and prints the headline numbers:
the E-process covers in Θ(n) while the SRW needs Θ(n log n).

Run:  python examples/quickstart.py [n]
"""

import math
import sys

from repro import (
    EdgeProcess,
    SimpleRandomWalk,
    random_connected_regular_graph,
    spawn,
    spectral_gap,
    verify_observation_10,
    verify_observation_12,
)
from repro.sim.tables import format_kv_block


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    rng = spawn(2012, "quickstart", n)
    graph = random_connected_regular_graph(n, 4, rng)

    eprocess = EdgeProcess(graph, start=0, rng=spawn(2012, "e", n))
    e_cover = eprocess.run_until_vertex_cover()
    verify_observation_10(eprocess)  # blue phases returned to their starts
    verify_observation_12(eprocess)  # t = t_R + t_B with t_B <= m

    srw = SimpleRandomWalk(graph, start=0, rng=spawn(2012, "s", n))
    s_cover = srw.run_until_vertex_cover()

    print(
        format_kv_block(
            f"E-process vs SRW on a random 4-regular graph, n = {n}",
            [
                ["spectral gap 1 - lambda_max", spectral_gap(graph)],
                ["E-process cover time", e_cover],
                ["  ... / n  (Theorem 1: O(1) for l = Omega(log n))", e_cover / n],
                ["  blue (unvisited-edge) steps", eprocess.blue_steps],
                ["  red (random-walk) steps", eprocess.red_steps],
                ["SRW cover time", s_cover],
                ["  ... / (n ln n)  (Feige floor: >= 1 asymptotically)", s_cover / (n * math.log(n))],
                ["speed-up SRW / E-process", s_cover / e_cover],
                ["ln n (the paper's predicted speed-up scale)", math.log(n)],
            ],
        )
    )
    print()
    print("Observations 10 and 12 verified on this run: every completed blue")
    print("phase returned to its start vertex, and t = t_R + t_B with t_B <= m.")


if __name__ == "__main__":
    main()
