#!/usr/bin/env python3
"""Figure 1, miniature edition: normalized cover time of the E-process.

Reproduces the paper's single figure as an ASCII plot: normalized cover
time C_V/n against n for d-regular random graphs, d = 3..7.  Even degrees
plot flat (Θ(n) cover, Corollary 2); odd degrees grow like c·ln n
(Section 5), with c ordered c(3) > c(5) > c(7) as in the paper.

Run:  python examples/figure1_mini.py [trials]
(defaults to 3 trials per point; the benchmark bench_figure1.py runs the
full-size version with paper-style fits)
"""

import sys

from repro import EdgeProcess, cover_time_trials, fit_nlogn, random_connected_regular_graph
from repro.sim.plot import ascii_plot
from repro.sim.tables import format_table

SIZES = [500, 1000, 2000, 4000, 8000]
DEGREES = [3, 4, 5, 6, 7]


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    series = []
    fit_rows = []
    for d in DEGREES:
        normalized = []
        raw = []
        for n in SIZES:
            nn = n if (n * d) % 2 == 0 else n + 1
            run = cover_time_trials(
                workload=lambda rng, k=nn, deg=d: random_connected_regular_graph(k, deg, rng),
                walk_factory=lambda g, s, rng: EdgeProcess(g, s, rng=rng, record_phases=False),
                trials=trials,
                root_seed=1207,
                label=f"fig1mini-{d}-{nn}",
            )
            normalized.append(run.stats.mean / nn)
            raw.append(run.stats.mean)
        series.append((f"d={d}", [float(x) for x in SIZES], normalized))
        fit = fit_nlogn(SIZES, raw)
        fit_rows.append([f"d={d}", fit.constant, {3: 0.93, 5: 0.41, 7: 0.38}.get(d, "flat")])

    print(
        ascii_plot(
            series,
            title="Normalized cover time of the E-process on d-regular graphs "
            "(cf. paper Figure 1)",
            x_label="n (log axis)",
            y_label="C_V / n",
            log_x=True,
        )
    )
    print()
    print(
        format_table(
            ["series", "fitted c in c*n*ln(n)", "paper"],
            fit_rows,
            title="Fitted n-log-n constants (meaningful for odd d only)",
        )
    )


if __name__ == "__main__":
    main()
