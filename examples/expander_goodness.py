#!/usr/bin/env python3
"""High girth even degree expanders, certified: the LPS graphs X^{5,q}.

The paper's title graphs, built from scratch (quaternion four-square
generators over PSL/PGL(2, Z_q)) and then *certified* property by
property:

* (p+1)-regular with p odd  → even degrees (Theorem 1 applies);
* Ramanujan: λ₂(A) ≤ 2√p   → constant eigenvalue gap (eq. (1) regime);
* girth Ω(log n)            → ℓ-goodness ≥ girth at every vertex, so the
  E-process covers in Θ(n); Theorem 3 gives O(m) edge cover.

The measured cover times are printed next to the theorem-bound values.

Run:  python examples/expander_goodness.py
"""

from repro import EdgeProcess, cover_time_trials, girth
from repro.core.bounds import theorem1_vertex_cover_bound, theorem3_edge_cover_bound
from repro.core.goodness import ell_lower_bound_girth
from repro.graphs.ramanujan import lps_graph, lps_is_bipartite
from repro.sim.tables import format_table
from repro.spectral.eigen import spectral_gap
from repro.spectral.expanders import adjacency_lambda2, alon_boppana_bound, is_ramanujan

QS = [13, 17]
TRIALS = 3


def main() -> None:
    rows = []
    for q in QS:
        graph = lps_graph(5, q)
        gap = spectral_gap(graph, lazy=True)
        girth_value = girth(graph, upper_bound=20)
        ell = ell_lower_bound_girth(graph)
        cv = cover_time_trials(
            graph,
            lambda g, s, rng: EdgeProcess(g, s, rng=rng, record_phases=False),
            trials=TRIALS, root_seed=513, label=f"lps-cv-{q}",
        )
        ce = cover_time_trials(
            graph,
            lambda g, s, rng: EdgeProcess(g, s, rng=rng, record_phases=False),
            trials=TRIALS, root_seed=513, target="edges", label=f"lps-ce-{q}",
        )
        thm1 = theorem1_vertex_cover_bound(graph.n, ell, gap)
        thm3 = theorem3_edge_cover_bound(graph.m, graph.n, gap, girth_value, 6)
        rows.append(
            [
                f"X^{{5,{q}}}",
                graph.n,
                "bip" if lps_is_bipartite(5, q) else "non-bip",
                f"{adjacency_lambda2(graph):.3f} <= {alon_boppana_bound(6):.3f}"
                if is_ramanujan(graph)
                else "NOT RAMANUJAN",
                girth_value,
                f">= {ell:.0f}",
                cv.stats.mean / graph.n,
                thm1 / graph.n,
                ce.stats.mean / graph.m,
                thm3 / graph.m,
            ]
        )
    print(
        format_table(
            [
                "graph", "n", "type", "Ramanujan check", "girth", "ell",
                "CV(E)/n", "Thm1/n", "CE(E)/m", "Thm3/m",
            ],
            rows,
            title="LPS Ramanujan graphs X^{5,q}: certified high-girth "
            "even-degree expanders; measured E-process covers vs theorem "
            "bounds (constant 1)",
        )
    )
    print()
    print("Both families: CV(E)/n ≈ 2 and CE(E)/m ≈ 1 — the linear-time title")
    print("claim — while the theorem bounds (with constant 1) sit far above.")


if __name__ == "__main__":
    main()
