#!/usr/bin/env python3
"""Exploration curves: how the E-process eats a graph, step by step.

Plots (in ASCII) the fraction of vertices visited against time for the
E-process and the SRW on the same random 4-regular graph, plus the phase
anatomy of the E-process run: the initial blue sweep consumes most of the
graph before the first random-walk step is ever taken, which is why
Observation 12's `t ≤ t_R + m` split has such a small `t_R` in practice.

Run:  python examples/exploration_curves.py [n]
"""

import sys

from repro import EdgeProcess, SimpleRandomWalk, random_connected_regular_graph, spawn
from repro.core.phasestats import phase_statistics
from repro.sim.plot import ascii_plot
from repro.sim.profiles import record_profile
from repro.sim.tables import format_kv_block


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    graph = random_connected_regular_graph(n, 4, spawn(7, "curves", n))

    e_walk = EdgeProcess(graph, 0, rng=spawn(7, "curves-e", n))
    e_profile = record_profile(e_walk)
    s_walk = SimpleRandomWalk(graph, 0, rng=spawn(7, "curves-s", n))
    s_profile = record_profile(s_walk)

    series = [
        (
            "E-process",
            [float(max(p.step, 1)) for p in e_profile.points],
            e_profile.vertex_fractions(n),
        ),
        (
            "SRW",
            [float(max(p.step, 1)) for p in s_profile.points],
            s_profile.vertex_fractions(n),
        ),
    ]
    print(
        ascii_plot(
            series,
            title=f"Vertex coverage vs time on G({n},4)  (log time axis)",
            x_label="steps",
            y_label="fraction visited",
            log_x=True,
        )
    )
    print()
    stats = phase_statistics(e_walk)
    print(
        format_kv_block(
            "anatomy of the E-process run",
            [
                ["cover step (E)", e_profile.vertex_cover_step],
                ["cover step (SRW)", s_profile.vertex_cover_step],
                ["blue phases", stats.num_blue_phases],
                ["red phases", stats.num_red_phases],
                ["first blue sweep (steps)", stats.first_blue_length],
                ["first sweep edge share", stats.first_blue_edge_share],
                ["blue fraction of all steps", stats.blue_fraction],
                ["tail share, last 1% (E)", e_profile.tail_fraction(n)],
                ["tail share, last 1% (SRW)", s_profile.tail_fraction(n)],
            ],
        )
    )


if __name__ == "__main__":
    main()
