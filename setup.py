"""Build script: optional native kernel + legacy-path shim.

All project metadata lives in pyproject.toml's ``[project]`` table
(setuptools >= 61 reads it from here); this file exists so pip can use
the non-PEP-517 editable install (which does not require the ``wheel``
package, unavailable in offline environments) and to declare the
*optional* C extension behind the fleet engines' fused lockstep kernel.

The extension is best-effort by design: source installs on machines
without a C compiler (or with broken toolchains) must succeed, because
``repro.engine.native`` has a mandatory pure-numpy fallback that is
bit-identical — only slower.  ``Extension(..., optional=True)`` makes
setuptools tolerate per-extension build failures, and the ``build_ext``
subclass catches the remaining failure modes (no compiler found at all)
that some setuptools versions still raise eagerly.

``REPRO_SANITIZE=1`` flips both properties: the kernel is compiled under
AddressSanitizer + UndefinedBehaviorSanitizer and a build failure becomes
a hard error (a CI lane asking for an instrumented kernel must never
silently fall back to the uninstrumented numpy path).
``REPRO_SANITIZE=thread`` does the same under ThreadSanitizer instead —
ASan and TSan cannot coexist in one binary, so the mode is a choice, not
a set.  Sanitized builds are a correctness tool only — the
instrumentation overhead disqualifies them from any timing measurement.
Loading an instrumented ``.so`` into a stock CPython needs the matching
runtime preloaded::

    LD_PRELOAD=$(gcc -print-file-name=libasan.so) python -m pytest tests/test_native.py
    LD_PRELOAD=$(gcc -print-file-name=libtsan.so) python -m pytest tests/test_threaded_kernel.py
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

_SANITIZE_MODE = os.environ.get("REPRO_SANITIZE", "").strip().lower()
SANITIZE_THREAD = _SANITIZE_MODE in {"thread", "tsan"}
SANITIZE = SANITIZE_THREAD or _SANITIZE_MODE in {"1", "true", "yes", "on"}

_SANITIZER = "thread" if SANITIZE_THREAD else "address,undefined"

_SANITIZE_FLAGS = [
    f"-fsanitize={_SANITIZER}",
    "-fno-sanitize-recover=all",
    "-fno-omit-frame-pointer",
    "-g",
    "-O1",
]


class OptionalBuildExt(build_ext):
    """Never fail the install over the optional native kernel.

    Under ``REPRO_SANITIZE=1`` the tolerance inverts: the whole point of
    that build is the instrumented kernel, so failures propagate.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            if SANITIZE:
                raise
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            if SANITIZE:
                raise
            self._skip(exc)

    def _skip(self, exc):
        print(
            "WARNING: skipping optional native kernel "
            f"(repro.engine.native._fused): {exc}\n"
            "         repro stays fully functional on the numpy fallback."
        )


setup(
    ext_modules=[
        Extension(
            "repro.engine.native._fused",
            sources=["src/repro/engine/native/_fused.c"],
            optional=not SANITIZE,
            extra_compile_args=_SANITIZE_FLAGS if SANITIZE else [],
            extra_link_args=[f"-fsanitize={_SANITIZER}"] if SANITIZE else [],
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
