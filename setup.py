"""Legacy-path shim so ``pip install -e .`` works offline.

All project metadata lives in pyproject.toml's ``[project]`` table
(setuptools >= 61 reads it from here); this file only exists so pip can use
the non-PEP-517 editable install, which does not require the ``wheel``
package that is unavailable in this offline environment.
"""

from setuptools import setup

setup()
