"""Build script: optional native kernel + legacy-path shim.

All project metadata lives in pyproject.toml's ``[project]`` table
(setuptools >= 61 reads it from here); this file exists so pip can use
the non-PEP-517 editable install (which does not require the ``wheel``
package, unavailable in offline environments) and to declare the
*optional* C extension behind the fleet engines' fused lockstep kernel.

The extension is best-effort by design: source installs on machines
without a C compiler (or with broken toolchains) must succeed, because
``repro.engine.native`` has a mandatory pure-numpy fallback that is
bit-identical — only slower.  ``Extension(..., optional=True)`` makes
setuptools tolerate per-extension build failures, and the ``build_ext``
subclass catches the remaining failure modes (no compiler found at all)
that some setuptools versions still raise eagerly.
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Never fail the install over the optional native kernel."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._skip(exc)

    def _skip(self, exc):
        print(
            "WARNING: skipping optional native kernel "
            f"(repro.engine.native._fused): {exc}\n"
            "         repro stays fully functional on the numpy fallback."
        )


setup(
    ext_modules=[
        Extension(
            "repro.engine.native._fused",
            sources=["src/repro/engine/native/_fused.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
